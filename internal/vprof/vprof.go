// Package vprof is the virtual-time profiler: it attributes scheduler
// events, virtual-time spans, and wall CPU to named scheduling sites
// (simtime.SiteID labels like "netem.deliver" or "vca/recovery.scan").
//
// The profiler is a simtime.Probe. Like telemetry tracers and fleet
// monitors it observes but never steers: attaching one changes no event
// order, no row bytes, and a nil/absent profiler leaves the scheduler's
// dispatch path allocation-free.
//
// Its output splits along the determinism boundary:
//
//   - Deterministic counters — events fired per site, a log2 histogram of
//     inter-fire virtual-time gaps, events per virtual second — depend only
//     on the seed. They serialize as byte-stable JSONL (WriteJSONL) that is
//     golden-testable and worker-count-invariant.
//   - Wall-clock CPU attribution — nanoseconds spent inside each site's
//     callbacks, measured with time.Now around every probed event — is
//     explicitly non-deterministic. It never enters the JSONL report; it is
//     exported only through the pprof profile (WritePprof) and merge
//     summaries, which are provenance artifacts, not goldens.
package vprof

import (
	"math/bits"
	"time"

	"telepresence/internal/simtime"
)

// gapBuckets is the number of log2 inter-fire-gap buckets: bucket k counts
// gaps g with bits.Len64(g) == k, i.e. 2^(k-1) <= g < 2^k nanoseconds
// (bucket 0 counts zero-length gaps). 64 buckets cover every int64 gap.
const gapBuckets = 64

// siteStats accumulates one site's counters. Everything except cpuNanos is
// a pure function of the event stream (deterministic).
type siteStats struct {
	events   uint64
	last     simtime.Time
	fired    bool
	cpuNanos int64
	gaps     [gapBuckets]uint64
}

// Profiler aggregates per-site profiles for one scheduler. It implements
// simtime.Probe; install it with Attach. The zero value is not usable —
// construct with New. Profilers are single-threaded, like the schedulers
// they observe.
type Profiler struct {
	sched   *simtime.Scheduler
	sites   []siteStats // indexed by SiteID; grown on demand
	started time.Time   // wall-clock start of the event in flight
}

// New returns an idle profiler. Attach it to a scheduler before running.
func New() *Profiler { return &Profiler{} }

// Attach installs p as sched's probe. Attach before wiring subsystems so
// every event is observed; attaching mid-run only misses past events.
func (p *Profiler) Attach(sched *simtime.Scheduler) {
	p.sched = sched
	sched.SetProbe(p)
}

// EventStart implements simtime.Probe: it counts the firing, buckets the
// virtual-time gap since the site's previous firing, and starts the
// wall-clock timer for CPU attribution.
func (p *Profiler) EventStart(site simtime.SiteID, now simtime.Time) {
	for int(site) >= len(p.sites) {
		p.sites = append(p.sites, siteStats{})
	}
	st := &p.sites[site]
	st.events++
	if st.fired {
		gap := uint64(now - st.last)
		k := bits.Len64(gap)
		if k >= gapBuckets {
			k = gapBuckets - 1
		}
		st.gaps[k]++
	}
	st.last = now
	st.fired = true
	p.started = time.Now()
}

// EventEnd implements simtime.Probe: it charges the event's wall-clock
// duration to the site. Events never nest (simtime's Step is not
// re-entrant), so one in-flight timestamp suffices.
func (p *Profiler) EventEnd(site simtime.SiteID) {
	p.sites[site].cpuNanos += time.Since(p.started).Nanoseconds()
}

// Report snapshots the profile. Site names come from the attached
// scheduler's intern table; the unlabeled site reports as "(unlabeled)".
// The report's virtual duration is the scheduler's current Now, so
// events-per-virtual-second is well-defined whenever the snapshot is taken
// after the run.
func (p *Profiler) Report() *Report {
	r := &Report{}
	if p.sched != nil {
		r.VirtualNanos = int64(p.sched.Now())
	}
	for id := range p.sites {
		st := &p.sites[id]
		if st.events == 0 {
			continue
		}
		name := ""
		if p.sched != nil {
			name = p.sched.SiteName(simtime.SiteID(id))
		}
		if name == "" {
			name = Unlabeled
		}
		sr := SiteReport{
			Site:      name,
			Subsystem: subsystemOf(name),
			Events:    st.events,
			CPUNanos:  st.cpuNanos,
		}
		for k, c := range st.gaps {
			if c != 0 {
				sr.Gaps = append(sr.Gaps, GapBucket{LtNanos: bucketLtNanos(k), Count: c})
			}
		}
		r.Sites = append(r.Sites, sr)
		r.TotalEvents += st.events
	}
	r.sortAndDerive()
	return r
}
