package vprof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
)

// This file hand-rolls the pprof profile.proto wire format — encoder and
// decoder — so `go tool pprof -top/-web` renders the profiler's output
// without this module growing a dependency. Only the subset of the schema
// the profiler emits is implemented:
//
//	Profile:  sample_type=1, sample=2, location=4, function=5,
//	          string_table=6, time_nanos=9, duration_nanos=10,
//	          period_type=11, period=12, default_sample_type=14
//	ValueType: type=1, unit=2        Sample: location_id=1, value=2
//	Location:  id=1, line=4          Line:   function_id=1, line=2
//	Function:  id=1, name=2, system_name=3, filename=4
//
// Each site becomes a two-frame stack — leaf = the site, parent = its
// subsystem (the site name before the last '.') — with two sample values:
// deterministic event counts ("events/count") and wall CPU
// ("cpu/nanoseconds"). duration_nanos carries the profiled virtual
// duration, so a parsed profile round-trips back into a Report (minus the
// gap histograms, which pprof has no vocabulary for).

// protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uintField emits a varint field, omitting the proto3 zero default.
func (p *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, wireVarint)
	p.varint(v)
}

func (p *protoBuf) intField(field int, v int64) { p.uintField(field, uint64(v)) }

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) strField(field int, s string) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedInts encodes a repeated integer field in packed form.
func (p *protoBuf) packedInts(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// strTab interns strings into the profile string table (index 0 is "").
type strTab struct {
	idx map[string]int64
	tab []string
}

func newStrTab() *strTab {
	return &strTab{idx: map[string]int64{"": 0}, tab: []string{""}}
}

func (t *strTab) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.tab))
	t.tab = append(t.tab, s)
	t.idx[s] = i
	return i
}

// WritePprof serializes the report as a gzipped pprof profile with sample
// types events/count and cpu/nanoseconds. timeNanos stamps the profile's
// wall-clock collection time (pass 0 for a byte-reproducible file). The
// default sample type is "events", so `go tool pprof -top` ranks by the
// deterministic counter unless -sample_index=cpu selects wall CPU.
func (r *Report) WritePprof(w io.Writer, timeNanos int64) error {
	strs := newStrTab()
	var prof protoBuf

	valueType := func(field int, typ, unit string) {
		var vt protoBuf
		vt.intField(1, strs.id(typ))
		vt.intField(2, strs.id(unit))
		prof.bytesField(field, vt.b)
	}
	valueType(1, "events", "count")
	valueType(1, "cpu", "nanoseconds")

	// One shared function+location per distinct frame name (sites and
	// subsystems); IDs are issued in first-use order, which is
	// deterministic because r.Sites is sorted.
	frameIDs := make(map[string]uint64)
	var frameNames []string
	frame := func(name string) uint64 {
		if id, ok := frameIDs[name]; ok {
			return id
		}
		id := uint64(len(frameNames) + 1) // pprof IDs start at 1
		frameIDs[name] = id
		frameNames = append(frameNames, name)
		return id
	}

	for i := range r.Sites {
		s := &r.Sites[i]
		stack := []uint64{frame(s.Site)}
		if s.Subsystem != "" && s.Subsystem != s.Site {
			stack = append(stack, frame(s.Subsystem))
		}
		var sm protoBuf
		sm.packedInts(1, stack)
		var vals protoBuf
		vals.varint(s.Events)
		vals.varint(uint64(s.CPUNanos))
		sm.bytesField(2, vals.b)
		prof.bytesField(2, sm.b)
	}

	filename := strs.id("(virtual-time)")
	for i, name := range frameNames {
		id := uint64(i + 1)
		nameIdx := strs.id(name)

		var fn protoBuf
		fn.uintField(1, id)
		fn.intField(2, nameIdx)
		fn.intField(3, nameIdx)
		fn.intField(4, filename)
		prof.bytesField(5, fn.b)

		var line protoBuf
		line.uintField(1, id)
		var loc protoBuf
		loc.uintField(1, id)
		loc.bytesField(4, line.b)
		prof.bytesField(4, loc.b)
	}

	prof.intField(9, timeNanos)
	prof.intField(10, r.VirtualNanos)
	valueType(11, "cpu", "nanoseconds")
	prof.intField(12, 1)
	prof.intField(14, strs.id("events"))

	// string_table last: by then every string is interned. Field order is
	// irrelevant on the wire.
	for _, s := range strs.tab {
		prof.strField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	return gz.Close()
}

// protoReader walks a protobuf message.
type protoReader struct {
	b   []byte
	pos int
}

func (p *protoReader) done() bool { return p.pos >= len(p.b) }

func (p *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if p.pos >= len(p.b) {
			return 0, errors.New("vprof: truncated varint")
		}
		c := p.b[p.pos]
		p.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("vprof: varint overflow")
		}
	}
}

// field reads the next tag and, for length-delimited fields, the payload.
// Scalar fields return their varint value in num.
func (p *protoReader) field() (fieldNum int, num uint64, payload []byte, err error) {
	tag, err := p.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	fieldNum = int(tag >> 3)
	switch wire := int(tag & 7); wire {
	case wireVarint:
		num, err = p.varint()
	case wireBytes:
		var n uint64
		n, err = p.varint()
		if err == nil {
			if uint64(len(p.b)-p.pos) < n {
				return 0, 0, nil, errors.New("vprof: truncated field")
			}
			payload = p.b[p.pos : p.pos+int(n)]
			p.pos += int(n)
		}
	case wireFixed64:
		if len(p.b)-p.pos < 8 {
			return 0, 0, nil, errors.New("vprof: truncated fixed64")
		}
		p.pos += 8
	case wireFixed32:
		if len(p.b)-p.pos < 4 {
			return 0, 0, nil, errors.New("vprof: truncated fixed32")
		}
		p.pos += 4
	default:
		return 0, 0, nil, fmt.Errorf("vprof: unsupported wire type %d", wire)
	}
	return fieldNum, num, payload, err
}

// repeatedInts appends a repeated integer field's occurrence: packed
// payloads decode every element, scalar occurrences append one.
func repeatedInts(dst []uint64, num uint64, payload []byte) ([]uint64, error) {
	if payload == nil {
		return append(dst, num), nil
	}
	pr := protoReader{b: payload}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// ParsePprof reads a (gzipped or raw) profile.proto written by WritePprof
// — or any pprof profile using the same subset — back into a Report.
// Samples aggregate by leaf-frame name; gap histograms are not
// representable in pprof and come back empty.
func ParsePprof(rd io.Reader) (*Report, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		if data, err = io.ReadAll(gz); err != nil {
			return nil, err
		}
		if err := gz.Close(); err != nil {
			return nil, err
		}
	}

	type sampleRec struct {
		locs []uint64
		vals []uint64
	}
	var (
		strTab   []string
		types    [][2]uint64 // (type idx, unit idx)
		samples  []sampleRec
		locFunc  = make(map[uint64]uint64) // location id -> leaf function id
		funcName = make(map[uint64]uint64) // function id -> name idx
		duration int64
	)

	pr := protoReader{b: data}
	for !pr.done() {
		f, num, payload, err := pr.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1: // sample_type
			var typ, unit uint64
			vt := protoReader{b: payload}
			for !vt.done() {
				vf, vnum, _, err := vt.field()
				if err != nil {
					return nil, err
				}
				switch vf {
				case 1:
					typ = vnum
				case 2:
					unit = vnum
				}
			}
			types = append(types, [2]uint64{typ, unit})
		case 2: // sample
			var rec sampleRec
			sm := protoReader{b: payload}
			for !sm.done() {
				sf, snum, spay, err := sm.field()
				if err != nil {
					return nil, err
				}
				switch sf {
				case 1:
					if rec.locs, err = repeatedInts(rec.locs, snum, spay); err != nil {
						return nil, err
					}
				case 2:
					if rec.vals, err = repeatedInts(rec.vals, snum, spay); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, rec)
		case 4: // location
			var id, fnID uint64
			lm := protoReader{b: payload}
			for !lm.done() {
				lf, lnum, lpay, err := lm.field()
				if err != nil {
					return nil, err
				}
				switch lf {
				case 1:
					id = lnum
				case 4:
					if fnID == 0 { // first Line is the leaf-most
						ln := protoReader{b: lpay}
						for !ln.done() {
							lnf, lnnum, _, err := ln.field()
							if err != nil {
								return nil, err
							}
							if lnf == 1 {
								fnID = lnnum
							}
						}
					}
				}
			}
			locFunc[id] = fnID
		case 5: // function
			var id, name uint64
			fm := protoReader{b: payload}
			for !fm.done() {
				ff, fnum, _, err := fm.field()
				if err != nil {
					return nil, err
				}
				switch ff {
				case 1:
					id = fnum
				case 2:
					name = fnum
				}
			}
			funcName[id] = name
		case 6: // string_table
			strTab = append(strTab, string(payload))
		case 10: // duration_nanos
			duration = int64(num)
		}
	}

	nameAt := func(idx uint64) string {
		if idx < uint64(len(strTab)) {
			return strTab[idx]
		}
		return ""
	}
	eventsIdx, cpuIdx := -1, -1
	for i, t := range types {
		switch nameAt(t[0]) {
		case "events":
			eventsIdx = i
		case "cpu":
			cpuIdx = i
		}
	}
	if eventsIdx < 0 {
		return nil, errors.New("vprof: profile has no events/count sample type")
	}

	byName := make(map[string]*SiteReport)
	var order []string
	for _, rec := range samples {
		if len(rec.locs) == 0 {
			continue
		}
		name := nameAt(funcName[locFunc[rec.locs[0]]])
		if name == "" {
			name = Unlabeled
		}
		sr := byName[name]
		if sr == nil {
			sr = &SiteReport{Site: name, Subsystem: subsystemOf(name)}
			byName[name] = sr
			order = append(order, name)
		}
		if eventsIdx < len(rec.vals) {
			sr.Events += rec.vals[eventsIdx]
		}
		if cpuIdx >= 0 && cpuIdx < len(rec.vals) {
			sr.CPUNanos += int64(rec.vals[cpuIdx])
		}
	}
	sort.Strings(order)
	r := &Report{VirtualNanos: duration}
	for _, name := range order {
		r.Sites = append(r.Sites, *byName[name])
		r.TotalEvents += byName[name].Events
	}
	r.sortAndDerive()
	return r, nil
}
