package vprof

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"telepresence/internal/simtime"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// buildProfile runs a small deterministic simulation under a profiler:
// two tickers and a one-shot event across three subsystems.
func buildProfile(t *testing.T) (*Profiler, *simtime.Scheduler) {
	t.Helper()
	s := simtime.NewScheduler()
	p := New()
	p.Attach(s)
	fast := s.Site("netem.deliver")
	slow := s.Site("vca/recovery.scan")
	one := s.Site("scenario.apply")
	simtime.NewTickerSite(s, 10*time.Millisecond, func(simtime.Time) {}, fast)
	simtime.NewTickerSite(s, 100*time.Millisecond, func(simtime.Time) {}, slow)
	s.AtSite(simtime.Time(50*time.Millisecond), func() {}, one)
	s.At(simtime.Time(70*time.Millisecond), func() {}) // unlabeled
	s.RunUntil(simtime.Time(1 * time.Second))
	return p, s
}

func TestReportCounters(t *testing.T) {
	p, _ := buildProfile(t)
	r := p.Report()
	if r.VirtualNanos != int64(time.Second) {
		t.Errorf("VirtualNanos = %d, want 1s", r.VirtualNanos)
	}
	want := map[string]uint64{
		"netem.deliver":     100,
		"vca/recovery.scan": 10,
		"scenario.apply":    1,
		Unlabeled:           1,
	}
	if len(r.Sites) != len(want) {
		t.Fatalf("sites = %d, want %d: %+v", len(r.Sites), len(want), r.Sites)
	}
	for _, s := range r.Sites {
		if s.Events != want[s.Site] {
			t.Errorf("%s events = %d, want %d", s.Site, s.Events, want[s.Site])
		}
	}
	if r.TotalEvents != 112 {
		t.Errorf("TotalEvents = %d, want 112", r.TotalEvents)
	}
	// The 10 ms ticker fires every 10 ms: 99 gaps, all in the bucket
	// holding 10_000_000 ns (2^23 <= g < 2^24).
	for _, s := range r.Sites {
		if s.Site != "netem.deliver" {
			continue
		}
		if len(s.Gaps) != 1 || s.Gaps[0].Count != 99 || s.Gaps[0].LtNanos != 1<<24 {
			t.Errorf("netem.deliver gaps = %+v, want one bucket lt_ns=%d count=99", s.Gaps, 1<<24)
		}
		if got := s.EventsPerVSec; got != 100 {
			t.Errorf("netem.deliver events_per_vsec = %v, want 100", got)
		}
		if got := s.Subsystem; got != "netem" {
			t.Errorf("netem.deliver subsystem = %q", got)
		}
	}
}

// TestReportJSONLDeterministic: two identical runs serialize to identical
// bytes, and the serialized form survives a parse round trip.
func TestReportJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	p1, _ := buildProfile(t)
	if err := p1.Report().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	p2, _ := buildProfile(t)
	if err := p2.Report().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("reports not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}

	parsed, err := ParseReport(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := parsed.WriteJSONL(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Errorf("parse round trip changed bytes:\n%s\nvs\n%s", a.String(), c.String())
	}
}

func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport(strings.NewReader("")); err == nil {
		t.Error("empty input parsed")
	}
	if _, err := ParseReport(strings.NewReader("{\"format\":\"nope/9\"}\n")); err == nil {
		t.Error("unknown format parsed")
	}
	if _, err := ParseReport(strings.NewReader("{\"format\":\"" + ReportFormat + "\",\"sites\":3}\n")); err == nil {
		t.Error("truncated report parsed")
	}
}

func TestMerge(t *testing.T) {
	p1, _ := buildProfile(t)
	p2, _ := buildProfile(t)
	m := Merge(p1.Report(), p2.Report())
	if m.VirtualNanos != 2*int64(time.Second) {
		t.Errorf("merged VirtualNanos = %d, want 2s", m.VirtualNanos)
	}
	if m.TotalEvents != 224 {
		t.Errorf("merged TotalEvents = %d, want 224", m.TotalEvents)
	}
	for _, s := range m.Sites {
		if s.Site == "netem.deliver" {
			if s.Events != 200 {
				t.Errorf("merged events = %d, want 200", s.Events)
			}
			// Rate is per total profiled virtual second: unchanged.
			if s.EventsPerVSec != 100 {
				t.Errorf("merged events_per_vsec = %v, want 100", s.EventsPerVSec)
			}
			if len(s.Gaps) != 1 || s.Gaps[0].Count != 198 {
				t.Errorf("merged gaps = %+v, want count 198", s.Gaps)
			}
		}
	}
	// Merge keys on names, so it is associative over reports from
	// different schedulers with different SiteID assignments.
	s3 := simtime.NewScheduler()
	p3 := New()
	p3.Attach(s3)
	// Intern in a different order so IDs differ.
	other := s3.Site("vca/recovery.scan")
	simtime.NewTickerSite(s3, 100*time.Millisecond, func(simtime.Time) {}, other)
	s3.RunUntil(simtime.Time(1 * time.Second))
	m2 := Merge(m, p3.Report())
	for _, s := range m2.Sites {
		if s.Site == "vca/recovery.scan" && s.Events != 30 {
			t.Errorf("cross-scheduler merged events = %d, want 30", s.Events)
		}
	}
}

func TestTop(t *testing.T) {
	p, _ := buildProfile(t)
	top := p.Report().Top(2)
	if len(top) != 2 || top[0].Site != "netem.deliver" || top[1].Site != "vca/recovery.scan" {
		t.Errorf("Top(2) = %+v", top)
	}
	var buf bytes.Buffer
	if err := p.Report().WriteTop(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "netem.deliver") {
		t.Errorf("WriteTop output missing hot site:\n%s", buf.String())
	}
}

// TestPprofRoundTrip: the hand-rolled encoder's output decodes back to the
// same events/CPU/duration aggregates via the hand-rolled decoder.
func TestPprofRoundTrip(t *testing.T) {
	p, _ := buildProfile(t)
	r := p.Report()
	var buf bytes.Buffer
	if err := r.WritePprof(&buf, 12345); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualNanos != r.VirtualNanos || got.TotalEvents != r.TotalEvents {
		t.Errorf("round trip: virtual %d events %d, want %d / %d",
			got.VirtualNanos, got.TotalEvents, r.VirtualNanos, r.TotalEvents)
	}
	if len(got.Sites) != len(r.Sites) {
		t.Fatalf("round trip sites = %d, want %d", len(got.Sites), len(r.Sites))
	}
	for i := range r.Sites {
		w, g := r.Sites[i], got.Sites[i]
		if g.Site != w.Site || g.Events != w.Events || g.CPUNanos != w.CPUNanos {
			t.Errorf("site %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestPprofToolParses shells out to the stock toolchain: `go tool pprof
// -top` must parse the emitted profile and print the site frames.
func TestPprofToolParses(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("no go tool on PATH")
	}
	p, _ := buildProfile(t)
	f := t.TempDir() + "/profile.pb.gz"
	var buf bytes.Buffer
	if err := p.Report().WritePprof(&buf, time.Now().UnixNano()); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(f, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("go", "tool", "pprof", "-top", f).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top: %v\n%s", err, out)
	}
	for _, site := range []string{"netem.deliver", "vca/recovery.scan", "scenario.apply"} {
		if !strings.Contains(string(out), site) {
			t.Errorf("pprof -top output missing %q:\n%s", site, out)
		}
	}
}

func TestMergedPprofParses(t *testing.T) {
	p1, _ := buildProfile(t)
	p2, _ := buildProfile(t)
	m := Merge(p1.Report(), p2.Report())
	var buf bytes.Buffer
	if err := m.WritePprof(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePprof(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents != m.TotalEvents {
		t.Errorf("merged pprof events = %d, want %d", got.TotalEvents, m.TotalEvents)
	}
}
