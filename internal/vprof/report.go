package vprof

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Unlabeled is the reported site name for events scheduled without a site
// label (simtime.SiteID 0).
const Unlabeled = "(unlabeled)"

// ReportFormat tags the first line of every serialized report.
const ReportFormat = "telepresence-vprof/1"

// GapBucket is one nonzero bucket of a site's inter-fire gap histogram:
// Count gaps were >= LtNanos/2 and < LtNanos virtual nanoseconds (the
// bucket at LtNanos=1 counts zero-length gaps; the last bucket saturates
// at MaxInt64).
type GapBucket struct {
	LtNanos int64  `json:"lt_ns"`
	Count   uint64 `json:"count"`
}

// SiteReport is one scheduling site's aggregated profile. Everything but
// CPUNanos is deterministic given the seed.
type SiteReport struct {
	Site          string      `json:"site"`
	Subsystem     string      `json:"subsystem"`
	Events        uint64      `json:"events"`
	EventsPerVSec float64     `json:"events_per_vsec"`
	Gaps          []GapBucket `json:"gaps,omitempty"`
	// CPUNanos is wall-clock CPU charged to the site's callbacks. It is
	// explicitly non-deterministic: WriteJSONL omits it, so serialized
	// reports stay byte-stable. It reaches disk only via WritePprof.
	CPUNanos int64 `json:"-"`
}

// Report is a profile snapshot: per-site counters over a virtual duration.
// Sites are sorted by name, so equal inputs serialize to equal bytes.
type Report struct {
	VirtualNanos int64        `json:"virtual_ns"`
	TotalEvents  uint64       `json:"total_events"`
	Sites        []SiteReport `json:"-"`
}

// bucketLtNanos is bucket k's exclusive upper bound (saturating: the top
// bucket reports MaxInt64).
func bucketLtNanos(k int) int64 {
	if k >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(k)
}

// subsystemOf maps a site name to its pprof parent frame: everything
// before the last '.' ("vca/recovery.scan" -> "vca/recovery"). Names
// without a dot are their own subsystem.
func subsystemOf(site string) string {
	if i := strings.LastIndexByte(site, '.'); i > 0 {
		return site[:i]
	}
	return site
}

// sortAndDerive sorts sites by name and recomputes the derived
// events-per-virtual-second rates from the counters.
func (r *Report) sortAndDerive() {
	sort.Slice(r.Sites, func(i, j int) bool { return r.Sites[i].Site < r.Sites[j].Site })
	vsec := float64(r.VirtualNanos) / 1e9
	for i := range r.Sites {
		if vsec > 0 {
			r.Sites[i].EventsPerVSec = float64(r.Sites[i].Events) / vsec
		} else {
			r.Sites[i].EventsPerVSec = 0
		}
	}
}

// WriteJSONL serializes the deterministic half of the report: a header
// line followed by one line per site, keys in fixed order, floats via
// strconv with an explicit format. CPU nanos never appear, so two runs of
// the same seed produce byte-identical files at any worker count.
func (r *Report) WriteJSONL(w io.Writer) error {
	b := make([]byte, 0, 256)
	b = append(b, `{"format":"`...)
	b = append(b, ReportFormat...)
	b = append(b, `","virtual_ns":`...)
	b = strconv.AppendInt(b, r.VirtualNanos, 10)
	b = append(b, `,"total_events":`...)
	b = strconv.AppendUint(b, r.TotalEvents, 10)
	b = append(b, `,"sites":`...)
	b = strconv.AppendInt(b, int64(len(r.Sites)), 10)
	b = append(b, "}\n"...)
	if _, err := w.Write(b); err != nil {
		return err
	}
	for i := range r.Sites {
		s := &r.Sites[i]
		b = b[:0]
		b = append(b, `{"site":`...)
		b = appendJSONString(b, s.Site)
		b = append(b, `,"subsystem":`...)
		b = appendJSONString(b, s.Subsystem)
		b = append(b, `,"events":`...)
		b = strconv.AppendUint(b, s.Events, 10)
		b = append(b, `,"events_per_vsec":`...)
		b = strconv.AppendFloat(b, s.EventsPerVSec, 'f', -1, 64)
		if len(s.Gaps) > 0 {
			b = append(b, `,"gaps":[`...)
			for gi, g := range s.Gaps {
				if gi > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"lt_ns":`...)
				b = strconv.AppendInt(b, g.LtNanos, 10)
				b = append(b, `,"count":`...)
				b = strconv.AppendUint(b, g.Count, 10)
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		b = append(b, "}\n"...)
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// appendJSONString appends s as a JSON string. Site names are plain ASCII
// identifiers by convention, but escape the JSON specials anyway.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// ParseReport reads a report serialized by WriteJSONL. It is decode-side
// code off every hot path, so it uses encoding/json line by line.
func ParseReport(rd io.Reader) (*Report, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("vprof: empty report")
	}
	var hdr struct {
		Format       string `json:"format"`
		VirtualNanos int64  `json:"virtual_ns"`
		TotalEvents  uint64 `json:"total_events"`
		Sites        int    `json:"sites"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("vprof: bad report header: %w", err)
	}
	if hdr.Format != ReportFormat {
		return nil, fmt.Errorf("vprof: unknown report format %q", hdr.Format)
	}
	r := &Report{VirtualNanos: hdr.VirtualNanos, TotalEvents: hdr.TotalEvents}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s SiteReport
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("vprof: bad site line: %w", err)
		}
		r.Sites = append(r.Sites, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Sites) != hdr.Sites {
		return nil, fmt.Errorf("vprof: report truncated: header says %d sites, got %d", hdr.Sites, len(r.Sites))
	}
	return r, nil
}

// Merge sums reports site-by-site (keyed on site name, so profiles from
// different schedulers merge correctly regardless of SiteID assignment).
// Virtual durations add — the merged rate is events per total profiled
// virtual second — and CPU nanos add wherever present. Merging preserves
// determinism: merged counters from per-cell reports are byte-identical at
// any worker count because each input is.
func Merge(reports ...*Report) *Report {
	type acc struct {
		events uint64
		cpu    int64
		gaps   map[int64]uint64
	}
	byName := make(map[string]*acc)
	var names []string
	m := &Report{}
	for _, r := range reports {
		if r == nil {
			continue
		}
		m.VirtualNanos += r.VirtualNanos
		for i := range r.Sites {
			s := &r.Sites[i]
			a := byName[s.Site]
			if a == nil {
				a = &acc{gaps: make(map[int64]uint64)}
				byName[s.Site] = a
				names = append(names, s.Site)
			}
			a.events += s.Events
			a.cpu += s.CPUNanos
			for _, g := range s.Gaps {
				a.gaps[g.LtNanos] += g.Count
			}
			m.TotalEvents += s.Events
		}
	}
	sort.Strings(names)
	for _, name := range names {
		a := byName[name]
		sr := SiteReport{
			Site:      name,
			Subsystem: subsystemOf(name),
			Events:    a.events,
			CPUNanos:  a.cpu,
		}
		lts := make([]int64, 0, len(a.gaps))
		for lt := range a.gaps {
			lts = append(lts, lt)
		}
		sort.Slice(lts, func(i, j int) bool { return lts[i] < lts[j] })
		for _, lt := range lts {
			sr.Gaps = append(sr.Gaps, GapBucket{LtNanos: lt, Count: a.gaps[lt]})
		}
		m.Sites = append(m.Sites, sr)
	}
	m.sortAndDerive()
	return m
}

// Top returns the n hottest sites by deterministic event count (ties
// broken by name, so the ranking itself is deterministic).
func (r *Report) Top(n int) []SiteReport {
	top := make([]SiteReport, len(r.Sites))
	copy(top, r.Sites)
	sort.Slice(top, func(i, j int) bool {
		if top[i].Events != top[j].Events {
			return top[i].Events > top[j].Events
		}
		return top[i].Site < top[j].Site
	})
	if n > 0 && len(top) > n {
		top = top[:n]
	}
	return top
}

// WriteTop renders the n hottest sites as an aligned text table: site,
// events, events per virtual second, and (when the report carries it) CPU
// milliseconds. Human-facing output, never a golden.
func (r *Report) WriteTop(w io.Writer, n int) error {
	top := r.Top(n)
	hasCPU := false
	for i := range top {
		if top[i].CPUNanos != 0 {
			hasCPU = true
			break
		}
	}
	tw := bufio.NewWriter(w)
	fmt.Fprintf(tw, "vprof: %d sites, %d events over %ss virtual\n",
		len(r.Sites), r.TotalEvents, strconv.FormatFloat(float64(r.VirtualNanos)/1e9, 'f', 3, 64))
	for _, s := range top {
		fmt.Fprintf(tw, "%-32s %12d ev %12s ev/vsec", s.Site, s.Events,
			strconv.FormatFloat(s.EventsPerVSec, 'f', 1, 64))
		if hasCPU {
			fmt.Fprintf(tw, " %10s cpu-ms", strconv.FormatFloat(float64(s.CPUNanos)/1e6, 'f', 2, 64))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
