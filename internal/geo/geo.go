// Package geo models the geography underlying the paper's server-
// infrastructure measurements (§4.1, Figure 4): US vantage-point and server
// locations, great-circle distances, and a fiber-propagation RTT model with
// route inflation, access-network overhead, and per-provider processing
// delay.
package geo

import (
	"fmt"
	"math"

	"telepresence/internal/simrand"
)

// Location is a named geographic point.
type Location struct {
	Name string
	// Lat and Lon are in degrees.
	Lat, Lon float64
}

// String returns the location name.
func (l Location) String() string { return l.Name }

// Well-known locations used by the paper's experiments. Client vantage
// points: three each in the Western, Middle, and Eastern US (§4.1). Server
// locations: the states where the paper geolocated each provider's servers.
var (
	// Western US vantage points.
	Seattle      = Location{"Seattle, WA", 47.61, -122.33}
	SanFrancisco = Location{"San Francisco, CA", 37.77, -122.42}
	LosAngeles   = Location{"Los Angeles, CA", 34.05, -118.24}
	// Middle US vantage points.
	Denver  = Location{"Denver, CO", 39.74, -104.99}
	Chicago = Location{"Chicago, IL", 41.88, -87.63}
	Austin  = Location{"Austin, TX", 30.27, -97.74}
	// Eastern US vantage points.
	NewYork = Location{"New York, NY", 40.71, -74.01}
	Ashburn = Location{"Ashburn, VA", 39.04, -77.49}
	Miami   = Location{"Miami, FL", 25.76, -80.19}
	// Server locations (state abbreviations follow Figure 4's legend).
	ServerCA = Location{"CA", 37.37, -121.92} // San Jose area
	ServerTX = Location{"TX", 32.78, -96.80}  // Dallas area
	ServerIL = Location{"IL", 41.88, -87.63}  // Chicago area
	ServerVA = Location{"VA", 39.04, -77.49}  // Ashburn area
	ServerNJ = Location{"NJ", 40.22, -74.74}  // Trenton area
	ServerWA = Location{"WA", 47.61, -122.33} // Seattle area
	// Non-US reference points for the cross-continent discussion
	// (Implications 1: Europe-Asia one-way delay can exceed 100 ms).
	London    = Location{"London", 51.51, -0.13}
	Frankfurt = Location{"Frankfurt", 50.11, 8.68}
	Singapore = Location{"Singapore", 1.35, 103.82}
	Tokyo     = Location{"Tokyo", 35.68, 139.69}
)

// VantagePoints returns the paper's nine US client locations, west to east.
func VantagePoints() []Location {
	return []Location{
		Seattle, SanFrancisco, LosAngeles,
		Denver, Chicago, Austin,
		NewYork, Ashburn, Miami,
	}
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometers.
func DistanceKm(a, b Location) float64 {
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// SpeedOfLightFiberKmPerMs is the propagation speed of light in optical
// fiber, roughly two thirds of c.
const SpeedOfLightFiberKmPerMs = 200.0

// MinRTTMs returns the physically minimal round-trip time between two
// points: straight-line fiber at 2/3 c with zero route inflation. Used by
// the anycast detector (no unicast server can beat this bound).
func MinRTTMs(a, b Location) float64 {
	return 2 * DistanceKm(a, b) / SpeedOfLightFiberKmPerMs
}

// PathModel converts geography into round-trip times. Parameters reflect
// well-known measurement findings: Internet routes are 1.5-2.1x longer than
// geodesics, last-mile/WiFi access adds a few milliseconds, and servers add
// processing delay.
type PathModel struct {
	// Inflation multiplies the geodesic propagation delay (typical 1.5-2.1).
	Inflation float64
	// AccessMs is the fixed access-network (WiFi AP + last mile) RTT cost.
	AccessMs float64
	// ServerProcMs is the server-side processing added to each probe.
	ServerProcMs float64
	// JitterMu and JitterSigma parameterize lognormal queueing jitter (ms).
	JitterMu, JitterSigma float64
}

// DefaultPathModel returns parameters producing RTTs consistent with the
// paper's Figure 4: coast-to-coast >80 ms, same-metro <15 ms.
func DefaultPathModel() PathModel {
	return PathModel{
		Inflation:    1.8,
		AccessMs:     6.0,
		ServerProcMs: 1.5,
		JitterMu:     0.4, // exp(0.4)~1.5ms median jitter
		JitterSigma:  0.6,
	}
}

// BaseRTTMs returns the deterministic part of the RTT between a and b.
func (m PathModel) BaseRTTMs(a, b Location) float64 {
	prop := 2 * DistanceKm(a, b) / SpeedOfLightFiberKmPerMs * m.Inflation
	return prop + m.AccessMs + m.ServerProcMs
}

// SampleRTTMs returns one jittered RTT observation between a and b.
func (m PathModel) SampleRTTMs(a, b Location, rng *simrand.Source) float64 {
	return m.BaseRTTMs(a, b) + rng.LogNormal(m.JitterMu, m.JitterSigma)
}

// Validate reports an error if the model parameters are physically
// meaningless.
func (m PathModel) Validate() error {
	if m.Inflation < 1 {
		return fmt.Errorf("geo: inflation %.2f < 1 (routes cannot be shorter than geodesics)", m.Inflation)
	}
	if m.AccessMs < 0 || m.ServerProcMs < 0 {
		return fmt.Errorf("geo: negative fixed delay")
	}
	return nil
}

// Nearest returns the location in candidates closest to from, along with its
// distance. It panics on an empty candidate list (caller bug).
func Nearest(from Location, candidates []Location) (Location, float64) {
	if len(candidates) == 0 {
		panic("geo: Nearest with no candidates")
	}
	best := candidates[0]
	bestD := DistanceKm(from, best)
	for _, c := range candidates[1:] {
		if d := DistanceKm(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
