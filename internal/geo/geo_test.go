package geo

import (
	"math"
	"testing"
	"testing/quick"

	"telepresence/internal/simrand"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b     Location
		wantKm   float64
		tolerate float64
	}{
		{NewYork, LosAngeles, 3936, 60},
		{Seattle, Miami, 4400, 80},
		{SanFrancisco, ServerCA, 60, 40},
		{London, Singapore, 10850, 150},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.tolerate {
			t.Errorf("Distance(%v,%v) = %.0f km, want ~%.0f", c.a, c.b, got, c.wantKm)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Location{"a", math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Location{"b", math.Mod(lat2, 90), math.Mod(lon2, 180)}
		dab, dba := DistanceKm(a, b), DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-6 { // symmetry
			return false
		}
		if dab < 0 || dab > 20016 { // bounded by half circumference
			return false
		}
		return DistanceKm(a, a) < 1e-6 // identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVantagePoints(t *testing.T) {
	vps := VantagePoints()
	if len(vps) != 9 {
		t.Fatalf("got %d vantage points, want 9 (paper §4.1)", len(vps))
	}
	// Three longitudinal bands: west of -110, between, east of -85.
	var w, m, e int
	for _, v := range vps {
		switch {
		case v.Lon < -110:
			w++
		case v.Lon < -85:
			m++
		default:
			e++
		}
	}
	if w != 3 || m != 3 || e != 3 {
		t.Errorf("band split w/m/e = %d/%d/%d, want 3/3/3", w, m, e)
	}
}

func TestBaseRTTCoastToCoast(t *testing.T) {
	m := DefaultPathModel()
	// Paper: RTT >80 ms when users are on the coast opposite the server.
	if rtt := m.BaseRTTMs(NewYork, ServerCA); rtt < 80 {
		t.Errorf("NY->CA base RTT = %.1f ms, want >80 (paper Fig.4)", rtt)
	}
	// Same-metro RTT should be small.
	if rtt := m.BaseRTTMs(Chicago, ServerIL); rtt > 15 {
		t.Errorf("Chicago->IL base RTT = %.1f ms, want <15", rtt)
	}
	// Mid-US server keeps both coasts under ~70 ms (paper Fig.4 TX/IL).
	for _, vp := range VantagePoints() {
		if rtt := m.BaseRTTMs(vp, ServerTX); rtt > 70 {
			t.Errorf("%v->TX base RTT = %.1f ms, want <70", vp, rtt)
		}
	}
}

func TestEuropeAsiaOneWayExceeds100ms(t *testing.T) {
	// Implications 1: one-way propagation Europe-Asia may already exceed
	// 100 ms.
	m := DefaultPathModel()
	oneWay := m.BaseRTTMs(Frankfurt, Singapore) / 2
	if oneWay < 80 {
		t.Errorf("Frankfurt->Singapore one-way = %.1f ms, want >80", oneWay)
	}
}

func TestSampleRTTJitterPositive(t *testing.T) {
	m := DefaultPathModel()
	rng := simrand.New(1)
	base := m.BaseRTTMs(Denver, ServerTX)
	for i := 0; i < 1000; i++ {
		s := m.SampleRTTMs(Denver, ServerTX, rng)
		if s <= base {
			t.Fatalf("sampled RTT %.2f <= base %.2f (jitter must be positive)", s, base)
		}
	}
}

func TestMinRTTIsLowerBound(t *testing.T) {
	m := DefaultPathModel()
	rng := simrand.New(2)
	pairs := [][2]Location{{Seattle, ServerVA}, {Miami, ServerCA}, {Austin, ServerIL}}
	for _, p := range pairs {
		min := MinRTTMs(p[0], p[1])
		for i := 0; i < 100; i++ {
			if got := m.SampleRTTMs(p[0], p[1], rng); got < min {
				t.Fatalf("sampled RTT %.2f beats speed of light %.2f for %v->%v",
					got, min, p[0], p[1])
			}
		}
	}
}

func TestNearest(t *testing.T) {
	servers := []Location{ServerCA, ServerTX, ServerIL, ServerVA}
	got, _ := Nearest(NewYork, servers)
	if got.Name != "VA" {
		t.Errorf("Nearest(NY) = %v, want VA", got)
	}
	got, _ = Nearest(SanFrancisco, servers)
	if got.Name != "CA" {
		t.Errorf("Nearest(SF) = %v, want CA", got)
	}
	got, _ = Nearest(Chicago, servers)
	if got.Name != "IL" {
		t.Errorf("Nearest(Chicago) = %v, want IL", got)
	}
}

func TestNearestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nearest with no candidates did not panic")
		}
	}()
	Nearest(NewYork, nil)
}

func TestValidate(t *testing.T) {
	if err := DefaultPathModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := PathModel{Inflation: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("inflation < 1 accepted")
	}
	bad2 := PathModel{Inflation: 1.5, AccessMs: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative access delay accepted")
	}
}
