// Package quic implements a faithful miniature of QUIC (RFC 9000) for the
// simulation: variable-length integers, long/short header packets, stream
// frames with offsets and FIN, cumulative+range ACKs, timer-based loss
// recovery, and a keyed payload scrambler standing in for TLS 1.3 (§5:
// spatial-persona trafic is end-to-end encrypted, so the capture layer can
// classify but not read it).
//
// The paper found FaceTime delivers spatial personas over QUIC when all
// participants wear Vision Pro (§4.1); the vca package selects this
// transport in exactly that case.
//
// Memory discipline: a connection's steady-state footprint is O(in-flight
// data), not O(session length). Send-side stream state is released (and its
// buffer recycled) once every fragment is acknowledged or abandoned;
// receive-side reassembly state is released on delivery, with completed
// stream IDs tracked by a compact watermark instead of a grow-forever map.
// Message.Data handed to OnMessage is only valid for the duration of the
// callback — receivers that retain it must copy (copy-on-retain).
package quic

import (
	"encoding/binary"
	"errors"
	"fmt"

	"telepresence/internal/netem"
	"telepresence/internal/simtime"
)

// Wire constants.
const (
	headerLong  = 0xC0 // long header: handshake packets
	headerShort = 0x40 // short header: 1-RTT application packets
	// Version mimics QUICv1.
	version = 0x00000001
	// MTU is the maximum QUIC packet payload carried per UDP datagram.
	MTU = 1200
	// udpIPOverhead is the IP+UDP encapsulation cost added to every
	// packet's wire size.
	udpIPOverhead = 28
)

// Frame types (subset of RFC 9000).
const (
	frameAck    = 0x02
	frameCrypto = 0x06
	frameStream = 0x08 // with OFF|LEN|FIN bits -> 0x08..0x0F
)

// Errors.
var (
	ErrClosed    = errors.New("quic: connection closed")
	ErrMalformed = errors.New("quic: malformed packet")
)

// Message is a fully reassembled stream payload delivered to the
// application. Data is owned by the connection and valid only until the
// OnMessage callback returns; retain a copy if needed beyond that.
type Message struct {
	StreamID uint64
	Data     []byte
	// At is the delivery time.
	At simtime.Time
}

// Stats counts connection activity.
type Stats struct {
	PacketsSent, PacketsReceived int64
	BytesSent                    int64
	Retransmissions              int64
	MessagesDelivered            int64
	AcksSent                     int64
}

// Conn is one QUIC endpoint. Two Conns are joined by netem links (out is
// this endpoint's egress; the peer's out is our ingress, wired by the
// caller via Deliver or a Demux).
type Conn struct {
	sched *simtime.Scheduler
	out   *netem.Link
	// connID identifies this endpoint; packets it SENDS carry the peer's
	// ID as destination connection ID (DCID), like real QUIC.
	connID    uint64
	peerID    uint64
	key       byte // toy AEAD key (XOR keystream seed)
	handshook bool
	closed    bool

	nextPN       uint64
	nextStreamID uint64

	// Send-side stream state, kept until fully acknowledged or abandoned.
	sendStreams map[uint64]*sendStream
	// Receive-side reassembly for streams still missing data.
	recvStreams map[uint64]*recvStream
	// Delivered stream IDs at or above recvNext; recvNext is the next peer
	// stream ID whose completion advances the watermark. Together they
	// bound duplicate suppression to the reorder window instead of the
	// whole session.
	recvDone map[uint64]struct{}
	recvNext uint64

	// ACK state: received packet numbers pending acknowledgment.
	pendingAcks []uint64
	ackTimer    simtime.Handle
	ackPending  bool

	// Unacked packets for loss recovery.
	unacked map[uint64]*sentPacket

	onMessage func(Message)
	stats     Stats

	// RTO is the retransmission timeout; adapted crudely from observed
	// ACK delay.
	rto simtime.Duration

	// Freelists (single-goroutine; plain slices beat sync.Pool here).
	bufPool []([]byte)    // payload buffers: send copies, recv segments
	spPool  []*sentPacket // sentPacket nodes
	ssPool  []*sendStream // sendStream nodes
	rxBuf   []byte        // descrambled payload of the packet in flight
	msgBuf  []byte        // multi-fragment reassembly target

	// Profiler site labels for the connection's timer events, interned at
	// construction so per-packet scheduling stays map-free.
	rtoSite simtime.SiteID
	ackSite simtime.SiteID
}

type sendStream struct {
	id   uint64
	data []byte // pooled; released when pending reaches zero
	// pending counts fragments not yet acknowledged or abandoned.
	pending int
}

type recvStream struct {
	segs   map[uint64][]byte // offset -> pooled copy of the segment
	finOff int64             // -1 until FIN seen
}

type sentPacket struct {
	pn      uint64
	frames  []streamFrag
	timer   simtime.Handle
	retries int
}

type streamFrag struct {
	streamID uint64
	offset   uint64
	data     []byte
	fin      bool
}

// Config for a connection.
type Config struct {
	// ConnID is this endpoint's connection ID (must be nonzero and unique
	// per direction).
	ConnID uint64
	// PeerID is the remote endpoint's connection ID, written as the DCID
	// of every packet this endpoint sends. Zero is allowed only when a
	// single conn owns the link (the peer then accepts any DCID).
	PeerID uint64
	// Key is the toy encryption key shared by both endpoints.
	Key byte
	// IsClient marks the handshake initiator.
	IsClient bool
	// SrcPort/DstPort and addressing are carried by the caller's frames;
	// the Conn itself is address-agnostic.
}

// NewConn creates an endpoint sending over out.
func NewConn(sched *simtime.Scheduler, out *netem.Link, cfg Config) *Conn {
	if cfg.ConnID == 0 {
		panic("quic: zero connection id")
	}
	first, peerFirst := uint64(1), uint64(0)
	if cfg.IsClient {
		first, peerFirst = 0, 1 // client-initiated bidi streams: 0, 4, 8...
	}
	return &Conn{
		sched:        sched,
		out:          out,
		connID:       cfg.ConnID,
		peerID:       cfg.PeerID,
		key:          cfg.Key,
		sendStreams:  map[uint64]*sendStream{},
		recvStreams:  map[uint64]*recvStream{},
		recvDone:     map[uint64]struct{}{},
		recvNext:     peerFirst,
		unacked:      map[uint64]*sentPacket{},
		rto:          100 * simtime.Millisecond,
		nextStreamID: first,
		rtoSite:      sched.Site("quic.rto"),
		ackSite:      sched.Site("quic.ack"),
	}
}

// OnMessage registers the application callback for reassembled messages.
func (c *Conn) OnMessage(fn func(Message)) { c.onMessage = fn }

// Stats returns a copy of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// Handshook reports whether the 1-RTT keys are established.
func (c *Conn) Handshook() bool { return c.handshook }

// Close stops all retransmission activity.
func (c *Conn) Close() {
	c.closed = true
	//vplint:allow maporder(cancel-all teardown; cancellation is commutative and nothing observes the order)
	for _, sp := range c.unacked {
		sp.timer.Cancel()
	}
	c.ackTimer.Cancel()
	c.ackPending = false
}

// getBuf returns a pooled buffer of length n.
func (c *Conn) getBuf(n int) []byte {
	if last := len(c.bufPool) - 1; last >= 0 {
		b := c.bufPool[last]
		c.bufPool[last] = nil
		c.bufPool = c.bufPool[:last]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf recycles a buffer obtained from getBuf.
func (c *Conn) putBuf(b []byte) {
	if cap(b) > 0 {
		c.bufPool = append(c.bufPool, b[:0])
	}
}

func (c *Conn) getSentPacket() *sentPacket {
	if last := len(c.spPool) - 1; last >= 0 {
		sp := c.spPool[last]
		c.spPool[last] = nil
		c.spPool = c.spPool[:last]
		return sp
	}
	return &sentPacket{}
}

func (c *Conn) putSentPacket(sp *sentPacket) {
	for i := range sp.frames {
		sp.frames[i] = streamFrag{}
	}
	sp.frames = sp.frames[:0]
	sp.retries = 0
	c.spPool = append(c.spPool, sp)
}

// StartHandshake sends the client Initial. The peer responds via its
// Deliver path; after one round trip both sides mark themselves handshook.
func (c *Conn) StartHandshake() {
	pkt := c.longHeader()
	pkt = append(pkt, frameCrypto)
	pkt = AppendVarint(pkt, 0)                           // offset
	pkt = AppendVarint(pkt, uint64(len("CLIENT_HELLO"))) // length
	pkt = append(pkt, "CLIENT_HELLO"...)
	c.sendRaw(pkt, MTU) // Initials are padded to full MTU per RFC 9000
}

func (c *Conn) longHeader() []byte {
	b := []byte{headerLong}
	b = binary.BigEndian.AppendUint32(b, version)
	b = binary.BigEndian.AppendUint64(b, c.peerID) // DCID
	b = binary.BigEndian.AppendUint64(b, c.connID) // SCID
	return b
}

// appendShortHeader writes the 1-RTT header into b.
func (c *Conn) appendShortHeader(b []byte, pn uint64) []byte {
	b = append(b, headerShort)
	b = binary.BigEndian.AppendUint64(b, c.peerID) // DCID
	return AppendVarint(b, pn)
}

// scramble is the toy AEAD: a keyed keystream XOR. It makes 1-RTT payloads
// opaque to the capture layer while remaining trivially invertible for the
// peer that shares the key.
func (c *Conn) scramble(b []byte) {
	state := uint32(c.key) * 2654435761
	for i := range b {
		state = state*1664525 + 1013904223
		b[i] ^= byte(state >> 24)
	}
}

// SendMessage opens a new stream, writes data, and FINs it — the
// stream-per-media-frame pattern. It returns the stream ID. data is copied
// (into a pooled buffer), so the caller may reuse it immediately.
func (c *Conn) SendMessage(data []byte) uint64 {
	id := c.nextStreamID
	c.nextStreamID += 4
	buf := c.getBuf(len(data))
	copy(buf, data)
	var ss *sendStream
	if last := len(c.ssPool) - 1; last >= 0 {
		ss = c.ssPool[last]
		c.ssPool[last] = nil
		c.ssPool = c.ssPool[:last]
	} else {
		ss = &sendStream{}
	}
	ss.id, ss.data, ss.pending = id, buf, 0
	c.sendStreams[id] = ss
	// Fragment into MTU-sized stream frames, one packet each.
	for off := 0; off == 0 || off < len(ss.data); {
		end := off + MTU - 64 // header + frame overhead headroom
		if end > len(ss.data) {
			end = len(ss.data)
		}
		fin := end == len(ss.data)
		ss.pending++
		c.sendStreamFrame(streamFrag{streamID: id, offset: uint64(off), data: ss.data[off:end], fin: fin})
		if end == len(ss.data) {
			break
		}
		off = end
	}
	return id
}

// fragDone marks one fragment of a stream acknowledged or abandoned,
// releasing the stream (and recycling its buffer) when none remain.
func (c *Conn) fragDone(streamID uint64) {
	ss, ok := c.sendStreams[streamID]
	if !ok {
		return
	}
	ss.pending--
	if ss.pending <= 0 {
		delete(c.sendStreams, streamID)
		c.putBuf(ss.data)
		ss.data = nil
		c.ssPool = append(c.ssPool, ss)
	}
}

func (c *Conn) sendStreamFrame(fr streamFrag) {
	if c.closed {
		return
	}
	pn := c.nextPN
	c.nextPN++

	ftype := byte(frameStream | 0x04 | 0x02) // OFF|LEN bits set
	if fr.fin {
		ftype |= 0x01
	}
	// Build header and scrambled payload in one exact-size buffer.
	hdrLen := 1 + 8 + VarintLen(pn)
	metaLen := 1 + VarintLen(fr.streamID) + VarintLen(fr.offset) + VarintLen(uint64(len(fr.data)))
	pkt := make([]byte, 0, hdrLen+metaLen+len(fr.data))
	pkt = c.appendShortHeader(pkt, pn)
	pkt = append(pkt, ftype)
	pkt = AppendVarint(pkt, fr.streamID)
	pkt = AppendVarint(pkt, fr.offset)
	pkt = AppendVarint(pkt, uint64(len(fr.data)))
	pkt = append(pkt, fr.data...)
	c.scramble(pkt[hdrLen:])

	sp := c.getSentPacket()
	sp.pn = pn
	sp.frames = append(sp.frames, fr)
	c.unacked[pn] = sp
	sp.timer = c.sched.AfterArgSite(c.rto, retransmitFn, retransmitArg{c, sp, pn}, c.rtoSite)
	c.sendRaw(pkt, 0)
}

// retransmitArg carries the retransmission context through AtArg without a
// per-packet closure. The pn snapshot guards against the (pooled) sentPacket
// being reused by the time a stale timer would fire.
type retransmitArg struct {
	c  *Conn
	sp *sentPacket
	pn uint64
}

func retransmitFn(a any) {
	ra := a.(retransmitArg)
	ra.c.retransmit(ra.sp, ra.pn)
}

func (c *Conn) retransmit(sp *sentPacket, pn uint64) {
	if c.closed {
		return
	}
	if cur, still := c.unacked[pn]; !still || cur != sp || sp.pn != pn {
		return
	}
	delete(c.unacked, pn)
	sp.retries++
	if sp.retries > 10 {
		// Give up; the application-level integrity layer will notice.
		for _, fr := range sp.frames {
			c.fragDone(fr.streamID)
		}
		c.putSentPacket(sp)
		return
	}
	c.stats.Retransmissions++
	// Resend each fragment under a fresh packet number, then recycle this
	// node (every send gets its own sentPacket, as the pn is new).
	for _, fr := range sp.frames {
		c.sendStreamFrame(fr)
	}
	c.putSentPacket(sp)
	// Exponential-ish backoff.
	if c.rto < simtime.Second {
		c.rto = c.rto * 3 / 2
	}
}

func (c *Conn) sendRaw(pkt []byte, padTo int) {
	size := len(pkt)
	if padTo > size {
		size = padTo
	}
	size += udpIPOverhead
	c.stats.PacketsSent++
	c.stats.BytesSent += int64(size)
	c.out.Send(netem.Frame{Size: size, Payload: pkt})
}

// Deliver is the ingress path: the caller wires the peer link's handler to
// this method.
func (c *Conn) Deliver(now simtime.Time, f netem.Frame) {
	if c.closed || len(f.Payload) == 0 {
		return
	}
	b := f.Payload
	c.stats.PacketsReceived++
	switch {
	case b[0] == headerLong:
		c.handleLong(b)
	case b[0] == headerShort:
		c.handleShort(now, b)
	}
}

func (c *Conn) handleLong(b []byte) {
	if len(b) < 21 {
		return
	}
	dcid := binary.BigEndian.Uint64(b[5:13])
	if dcid != 0 && c.peerID != 0 && dcid != c.connID {
		return // not addressed to us
	}
	// Any CRYPTO round trip completes our toy handshake: client Initial ->
	// server response -> both handshook.
	if !c.handshook {
		c.handshook = true
		// Respond once so the initiator also completes.
		resp := c.longHeader()
		resp = append(resp, frameCrypto)
		resp = AppendVarint(resp, 0)
		resp = AppendVarint(resp, uint64(len("SERVER_HELLO")))
		resp = append(resp, "SERVER_HELLO"...)
		c.sendRaw(resp, MTU)
	}
}

func (c *Conn) handleShort(now simtime.Time, b []byte) {
	if len(b) < 10 {
		return
	}
	dcid := binary.BigEndian.Uint64(b[1:9])
	if dcid != 0 && dcid != c.connID {
		return // not addressed to us
	}
	pn, n, err := Varint(b[9:])
	if err != nil {
		return
	}
	// Descramble into the connection's receive scratch: the frame payload
	// belongs to the sender and must not be modified in place.
	c.rxBuf = append(c.rxBuf[:0], b[9+n:]...)
	c.scramble(c.rxBuf)
	c.parseFrames(now, pn, c.rxBuf)
}

func (c *Conn) parseFrames(now simtime.Time, pn uint64, p []byte) {
	ackEliciting := false
	for len(p) > 0 {
		ft := p[0]
		p = p[1:]
		switch {
		case ft == 0: // padding
		case ft == frameAck:
			var ok bool
			p, ok = c.parseAck(p)
			if !ok {
				return
			}
		case ft&0xF8 == frameStream:
			ackEliciting = true
			var ok bool
			p, ok = c.parseStream(now, ft, p)
			if !ok {
				return
			}
		default:
			return // unknown frame: drop rest
		}
	}
	if ackEliciting {
		c.queueAck(pn)
	}
}

// streamDelivered reports whether id has already been fully delivered.
func (c *Conn) streamDelivered(id uint64) bool {
	if id < c.recvNext {
		return true
	}
	_, done := c.recvDone[id]
	return done
}

// recvDoneBound caps duplicate-suppression memory when the watermark
// stalls on a stream that is not completing (sustained overload can starve
// one fragment for a long time). Once this many later streams have
// completed — tens of seconds of media — the stalled frame is worthless to
// the application, so the watermark skips the gap and re-bounds memory; a
// fragment arriving after the skip is treated as already-done and dropped.
const recvDoneBound = 4096

// markDelivered records id as done and advances the watermark past every
// consecutively completed stream, keeping recvDone bounded by the reorder
// window.
func (c *Conn) markDelivered(id uint64) {
	c.recvDone[id] = struct{}{}
	for {
		if _, ok := c.recvDone[c.recvNext]; !ok {
			break
		}
		delete(c.recvDone, c.recvNext)
		c.recvNext += 4
	}
	// Watermark stalled on an abandoned stream: skip gaps (releasing any
	// partial reassembly state) until the done-set is bounded again.
	for len(c.recvDone) > recvDoneBound {
		if _, ok := c.recvDone[c.recvNext]; ok {
			delete(c.recvDone, c.recvNext)
		} else if rs := c.recvStreams[c.recvNext]; rs != nil {
			//vplint:allow maporder(releases content-free scratch to the buffer pool; output never depends on reuse order)
			for _, seg := range rs.segs {
				c.putBuf(seg)
			}
			delete(c.recvStreams, c.recvNext)
		}
		c.recvNext += 4
	}
}

func (c *Conn) parseStream(now simtime.Time, ftype byte, p []byte) ([]byte, bool) {
	id, n, err := Varint(p)
	if err != nil {
		return nil, false
	}
	p = p[n:]
	var off uint64
	if ftype&0x04 != 0 {
		off, n, err = Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
	}
	length := uint64(len(p))
	if ftype&0x02 != 0 {
		length, n, err = Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
	}
	if length > uint64(len(p)) {
		return nil, false
	}
	data := p[:length]
	fin := ftype&0x01 != 0
	rest := p[length:]

	if c.streamDelivered(id) {
		return rest, true // duplicate of a completed stream
	}
	rs := c.recvStreams[id]
	if rs == nil {
		if fin && off == 0 {
			// Fast path: the whole message arrived in one fragment. Deliver
			// straight out of the receive scratch — zero copies, no map.
			c.deliverMessage(now, id, data)
			return rest, true
		}
		rs = &recvStream{segs: map[uint64][]byte{}, finOff: -1}
		c.recvStreams[id] = rs
	}
	if _, dup := rs.segs[off]; !dup {
		seg := c.getBuf(len(data))
		copy(seg, data)
		rs.segs[off] = seg
	}
	if fin {
		rs.finOff = int64(off + length)
	}
	c.tryDeliver(now, id, rs)
	return rest, true
}

// deliverMessage hands data to the application and retires the stream ID.
// data is only guaranteed valid during the callback (copy-on-retain).
func (c *Conn) deliverMessage(now simtime.Time, id uint64, data []byte) {
	c.markDelivered(id)
	c.stats.MessagesDelivered++
	if c.onMessage != nil {
		c.onMessage(Message{StreamID: id, Data: data, At: now})
	}
}

func (c *Conn) tryDeliver(now simtime.Time, id uint64, rs *recvStream) {
	if rs.finOff < 0 {
		return
	}
	// Walk contiguous segments from 0 into the reassembly scratch.
	buf := c.msgBuf[:0]
	off := uint64(0)
	for int64(off) < rs.finOff {
		seg, ok := rs.segs[off]
		if !ok {
			return // gap
		}
		buf = append(buf, seg...)
		off += uint64(len(seg))
	}
	c.msgBuf = buf
	//vplint:allow maporder(releases content-free scratch to the buffer pool; output never depends on reuse order)
	for _, seg := range rs.segs {
		c.putBuf(seg)
	}
	delete(c.recvStreams, id)
	c.deliverMessage(now, id, buf)
}

// queueAck registers pn for acknowledgment, flushing immediately every
// second packet or after max_ack_delay.
func (c *Conn) queueAck(pn uint64) {
	c.pendingAcks = append(c.pendingAcks, pn)
	if len(c.pendingAcks) >= 2 {
		c.flushAcks()
		return
	}
	if !c.ackPending {
		c.ackPending = true
		c.ackTimer = c.sched.AfterArgSite(25*simtime.Millisecond, ackTimerFn, c, c.ackSite)
	}
}

func ackTimerFn(a any) {
	c := a.(*Conn)
	c.ackPending = false
	c.flushAcks()
}

func (c *Conn) flushAcks() {
	if len(c.pendingAcks) == 0 || c.closed {
		return
	}
	pn := c.nextPN
	c.nextPN++
	hdrLen := 1 + 8 + VarintLen(pn)
	payloadLen := 1 + VarintLen(uint64(len(c.pendingAcks)))
	for _, apn := range c.pendingAcks {
		payloadLen += VarintLen(apn)
	}
	pkt := make([]byte, 0, hdrLen+payloadLen)
	pkt = c.appendShortHeader(pkt, pn)
	pkt = append(pkt, frameAck)
	pkt = AppendVarint(pkt, uint64(len(c.pendingAcks)))
	for _, apn := range c.pendingAcks {
		pkt = AppendVarint(pkt, apn)
	}
	c.pendingAcks = c.pendingAcks[:0]
	c.scramble(pkt[hdrLen:])
	c.stats.AcksSent++
	c.sendRaw(pkt, 0)
}

func (c *Conn) parseAck(p []byte) ([]byte, bool) {
	count, n, err := Varint(p)
	if err != nil || count > 1<<20 {
		return nil, false
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		pn, n, err := Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
		if sp, ok := c.unacked[pn]; ok {
			sp.timer.Cancel()
			delete(c.unacked, pn)
			for _, fr := range sp.frames {
				c.fragDone(fr.streamID)
			}
			c.putSentPacket(sp)
		}
	}
	return p, true
}

// IsQUIC classifies a UDP payload as QUIC by its header form bits — the
// heuristic the paper's Wireshark analysis relies on.
func IsQUIC(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	b := payload[0]
	if b&0xC0 == 0xC0 { // long header with fixed bit
		return len(payload) >= 5 && binary.BigEndian.Uint32(payload[1:5]) == version
	}
	return b&0xC0 == 0x40 // short header: fixed bit set, long bit clear
}

// String renders stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d recv=%d bytes=%d rtx=%d msgs=%d",
		s.PacketsSent, s.PacketsReceived, s.BytesSent, s.Retransmissions, s.MessagesDelivered)
}

// DCID extracts the destination connection ID of a QUIC packet, or 0 if the
// packet is unparseable.
func DCID(payload []byte) uint64 {
	if len(payload) == 0 {
		return 0
	}
	switch payload[0] {
	case headerLong:
		if len(payload) >= 13 {
			return binary.BigEndian.Uint64(payload[5:13])
		}
	case headerShort:
		if len(payload) >= 9 {
			return binary.BigEndian.Uint64(payload[1:9])
		}
	}
	return 0
}

// Demux routes packets arriving on a shared link to the Conn whose ID
// matches the packet's DCID — how one UDP socket hosts many QUIC
// connections.
type Demux struct {
	conns map[uint64]*Conn
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux { return &Demux{conns: map[uint64]*Conn{}} }

// Add registers a connection by its local ID.
func (d *Demux) Add(c *Conn) { d.conns[c.connID] = c }

// Handler is the netem link handler that dispatches by DCID.
func (d *Demux) Handler(now simtime.Time, f netem.Frame) {
	if c, ok := d.conns[DCID(f.Payload)]; ok {
		c.Deliver(now, f)
	}
}
