// Package quic implements a faithful miniature of QUIC (RFC 9000) for the
// simulation: variable-length integers, long/short header packets, stream
// frames with offsets and FIN, cumulative+range ACKs, timer-based loss
// recovery, and a keyed payload scrambler standing in for TLS 1.3 (§5:
// spatial-persona trafic is end-to-end encrypted, so the capture layer can
// classify but not read it).
//
// The paper found FaceTime delivers spatial personas over QUIC when all
// participants wear Vision Pro (§4.1); the vca package selects this
// transport in exactly that case.
package quic

import (
	"encoding/binary"
	"errors"
	"fmt"

	"telepresence/internal/netem"
	"telepresence/internal/simtime"
)

// Wire constants.
const (
	headerLong  = 0xC0 // long header: handshake packets
	headerShort = 0x40 // short header: 1-RTT application packets
	// Version mimics QUICv1.
	version = 0x00000001
	// MTU is the maximum QUIC packet payload carried per UDP datagram.
	MTU = 1200
	// udpIPOverhead is the IP+UDP encapsulation cost added to every
	// packet's wire size.
	udpIPOverhead = 28
)

// Frame types (subset of RFC 9000).
const (
	frameAck    = 0x02
	frameCrypto = 0x06
	frameStream = 0x08 // with OFF|LEN|FIN bits -> 0x08..0x0F
)

// Errors.
var (
	ErrClosed    = errors.New("quic: connection closed")
	ErrMalformed = errors.New("quic: malformed packet")
)

// Message is a fully reassembled stream payload delivered to the
// application.
type Message struct {
	StreamID uint64
	Data     []byte
	// At is the delivery time.
	At simtime.Time
}

// Stats counts connection activity.
type Stats struct {
	PacketsSent, PacketsReceived int64
	BytesSent                    int64
	Retransmissions              int64
	MessagesDelivered            int64
	AcksSent                     int64
}

// Conn is one QUIC endpoint. Two Conns are joined by netem links (out is
// this endpoint's egress; the peer's out is our ingress, wired by the
// caller via Deliver or a Demux).
type Conn struct {
	sched *simtime.Scheduler
	out   *netem.Link
	// connID identifies this endpoint; packets it SENDS carry the peer's
	// ID as destination connection ID (DCID), like real QUIC.
	connID    uint64
	peerID    uint64
	key       byte // toy AEAD key (XOR keystream seed)
	handshook bool
	closed    bool

	nextPN       uint64
	nextStreamID uint64

	// Send-side stream state, kept until fully acknowledged.
	sendStreams map[uint64]*sendStream
	// Receive-side reassembly.
	recvStreams map[uint64]*recvStream

	// ACK state: received packet numbers pending acknowledgment.
	pendingAcks []uint64
	ackTimer    *simtime.Event

	// Unacked packets for loss recovery.
	unacked map[uint64]*sentPacket

	onMessage func(Message)
	stats     Stats

	// RTO is the retransmission timeout; adapted crudely from observed
	// ACK delay.
	rto simtime.Duration
}

type sendStream struct {
	id    uint64
	data  []byte
	fin   bool
	acked map[uint64]bool // offsets acked (per fragment start)
}

type recvStream struct {
	segs   map[uint64][]byte
	finOff int64 // -1 until FIN seen
	done   bool
}

type sentPacket struct {
	pn      uint64
	frames  []streamFrag
	timer   *simtime.Event
	retries int
}

type streamFrag struct {
	streamID uint64
	offset   uint64
	data     []byte
	fin      bool
}

// Config for a connection.
type Config struct {
	// ConnID is this endpoint's connection ID (must be nonzero and unique
	// per direction).
	ConnID uint64
	// PeerID is the remote endpoint's connection ID, written as the DCID
	// of every packet this endpoint sends. Zero is allowed only when a
	// single conn owns the link (the peer then accepts any DCID).
	PeerID uint64
	// Key is the toy encryption key shared by both endpoints.
	Key byte
	// IsClient marks the handshake initiator.
	IsClient bool
	// SrcPort/DstPort and addressing are carried by the caller's frames;
	// the Conn itself is address-agnostic.
}

// NewConn creates an endpoint sending over out.
func NewConn(sched *simtime.Scheduler, out *netem.Link, cfg Config) *Conn {
	if cfg.ConnID == 0 {
		panic("quic: zero connection id")
	}
	return &Conn{
		sched:       sched,
		out:         out,
		connID:      cfg.ConnID,
		peerID:      cfg.PeerID,
		key:         cfg.Key,
		sendStreams: map[uint64]*sendStream{},
		recvStreams: map[uint64]*recvStream{},
		unacked:     map[uint64]*sentPacket{},
		rto:         100 * simtime.Millisecond,
		nextStreamID: func() uint64 {
			if cfg.IsClient {
				return 0 // client-initiated bidi streams: 0, 4, 8...
			}
			return 1
		}(),
	}
}

// OnMessage registers the application callback for reassembled messages.
func (c *Conn) OnMessage(fn func(Message)) { c.onMessage = fn }

// Stats returns a copy of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// Handshook reports whether the 1-RTT keys are established.
func (c *Conn) Handshook() bool { return c.handshook }

// Close stops all retransmission activity.
func (c *Conn) Close() {
	c.closed = true
	for _, sp := range c.unacked {
		sp.timer.Cancel()
	}
	if c.ackTimer != nil {
		c.ackTimer.Cancel()
	}
}

// StartHandshake sends the client Initial. The peer responds via its
// Deliver path; after one round trip both sides mark themselves handshook.
func (c *Conn) StartHandshake() {
	pkt := c.longHeader()
	pkt = append(pkt, frameCrypto)
	pkt = AppendVarint(pkt, 0)                           // offset
	pkt = AppendVarint(pkt, uint64(len("CLIENT_HELLO"))) // length
	pkt = append(pkt, "CLIENT_HELLO"...)
	c.sendRaw(pkt, MTU) // Initials are padded to full MTU per RFC 9000
}

func (c *Conn) longHeader() []byte {
	b := []byte{headerLong}
	b = binary.BigEndian.AppendUint32(b, version)
	b = binary.BigEndian.AppendUint64(b, c.peerID) // DCID
	b = binary.BigEndian.AppendUint64(b, c.connID) // SCID
	return b
}

func (c *Conn) shortHeader(pn uint64) []byte {
	b := []byte{headerShort}
	b = binary.BigEndian.AppendUint64(b, c.peerID) // DCID
	b = AppendVarint(b, pn)
	return b
}

// scramble is the toy AEAD: a keyed keystream XOR. It makes 1-RTT payloads
// opaque to the capture layer while remaining trivially invertible for the
// peer that shares the key.
func (c *Conn) scramble(b []byte) {
	state := uint32(c.key) * 2654435761
	for i := range b {
		state = state*1664525 + 1013904223
		b[i] ^= byte(state >> 24)
	}
}

// SendMessage opens a new stream, writes data, and FINs it — the
// stream-per-media-frame pattern. It returns the stream ID.
func (c *Conn) SendMessage(data []byte) uint64 {
	id := c.nextStreamID
	c.nextStreamID += 4
	ss := &sendStream{id: id, data: append([]byte(nil), data...), fin: true, acked: map[uint64]bool{}}
	c.sendStreams[id] = ss
	// Fragment into MTU-sized stream frames, one packet each.
	for off := 0; off == 0 || off < len(ss.data); {
		end := off + MTU - 64 // header + frame overhead headroom
		if end > len(ss.data) {
			end = len(ss.data)
		}
		fin := end == len(ss.data)
		c.sendStreamFrame(streamFrag{streamID: id, offset: uint64(off), data: ss.data[off:end], fin: fin})
		if end == len(ss.data) {
			break
		}
		off = end
	}
	return id
}

func (c *Conn) sendStreamFrame(fr streamFrag) {
	if c.closed {
		return
	}
	pn := c.nextPN
	c.nextPN++
	pkt := c.shortHeader(pn)

	ftype := byte(frameStream | 0x04 | 0x02) // OFF|LEN bits set
	if fr.fin {
		ftype |= 0x01
	}
	payload := []byte{ftype}
	payload = AppendVarint(payload, fr.streamID)
	payload = AppendVarint(payload, fr.offset)
	payload = AppendVarint(payload, uint64(len(fr.data)))
	payload = append(payload, fr.data...)
	c.scramble(payload)
	pkt = append(pkt, payload...)

	sp := &sentPacket{pn: pn, frames: []streamFrag{fr}}
	c.unacked[pn] = sp
	sp.timer = c.sched.After(c.rto, func() { c.retransmit(sp) })
	c.sendRaw(pkt, 0)
}

func (c *Conn) retransmit(sp *sentPacket) {
	if c.closed {
		return
	}
	if _, still := c.unacked[sp.pn]; !still {
		return
	}
	delete(c.unacked, sp.pn)
	sp.retries++
	if sp.retries > 10 {
		return // give up; the application-level integrity layer will notice
	}
	c.stats.Retransmissions++
	for _, fr := range sp.frames {
		c.sendStreamFrame(fr)
	}
	// Exponential-ish backoff.
	if c.rto < simtime.Second {
		c.rto = c.rto * 3 / 2
	}
}

func (c *Conn) sendRaw(pkt []byte, padTo int) {
	size := len(pkt)
	if padTo > size {
		size = padTo
	}
	size += udpIPOverhead
	c.stats.PacketsSent++
	c.stats.BytesSent += int64(size)
	c.out.Send(netem.Frame{Size: size, Payload: pkt})
}

// Deliver is the ingress path: the caller wires the peer link's handler to
// this method.
func (c *Conn) Deliver(now simtime.Time, f netem.Frame) {
	if c.closed || len(f.Payload) == 0 {
		return
	}
	b := f.Payload
	c.stats.PacketsReceived++
	switch {
	case b[0] == headerLong:
		c.handleLong(b)
	case b[0] == headerShort:
		c.handleShort(now, b)
	}
}

func (c *Conn) handleLong(b []byte) {
	if len(b) < 21 {
		return
	}
	dcid := binary.BigEndian.Uint64(b[5:13])
	if dcid != 0 && c.peerID != 0 && dcid != c.connID {
		return // not addressed to us
	}
	// Any CRYPTO round trip completes our toy handshake: client Initial ->
	// server response -> both handshook.
	if !c.handshook {
		c.handshook = true
		// Respond once so the initiator also completes.
		resp := c.longHeader()
		resp = append(resp, frameCrypto)
		resp = AppendVarint(resp, 0)
		resp = AppendVarint(resp, uint64(len("SERVER_HELLO")))
		resp = append(resp, "SERVER_HELLO"...)
		c.sendRaw(resp, MTU)
	}
}

func (c *Conn) handleShort(now simtime.Time, b []byte) {
	if len(b) < 10 {
		return
	}
	dcid := binary.BigEndian.Uint64(b[1:9])
	if dcid != 0 && dcid != c.connID {
		return // not addressed to us
	}
	pn, n, err := Varint(b[9:])
	if err != nil {
		return
	}
	payload := append([]byte(nil), b[9+n:]...)
	c.scramble(payload)
	c.parseFrames(now, pn, payload)
}

func (c *Conn) parseFrames(now simtime.Time, pn uint64, p []byte) {
	ackEliciting := false
	for len(p) > 0 {
		ft := p[0]
		p = p[1:]
		switch {
		case ft == 0: // padding
		case ft == frameAck:
			var ok bool
			p, ok = c.parseAck(p)
			if !ok {
				return
			}
		case ft&0xF8 == frameStream:
			ackEliciting = true
			var ok bool
			p, ok = c.parseStream(now, ft, p)
			if !ok {
				return
			}
		default:
			return // unknown frame: drop rest
		}
	}
	if ackEliciting {
		c.queueAck(pn)
	}
}

func (c *Conn) parseStream(now simtime.Time, ftype byte, p []byte) ([]byte, bool) {
	id, n, err := Varint(p)
	if err != nil {
		return nil, false
	}
	p = p[n:]
	var off uint64
	if ftype&0x04 != 0 {
		off, n, err = Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
	}
	length := uint64(len(p))
	if ftype&0x02 != 0 {
		length, n, err = Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
	}
	if length > uint64(len(p)) {
		return nil, false
	}
	data := p[:length]
	fin := ftype&0x01 != 0

	rs := c.recvStreams[id]
	if rs == nil {
		rs = &recvStream{segs: map[uint64][]byte{}, finOff: -1}
		c.recvStreams[id] = rs
	}
	if !rs.done {
		if _, dup := rs.segs[off]; !dup {
			rs.segs[off] = append([]byte(nil), data...)
		}
		if fin {
			rs.finOff = int64(off + length)
		}
		c.tryDeliver(now, id, rs)
	}
	return p[length:], true
}

func (c *Conn) tryDeliver(now simtime.Time, id uint64, rs *recvStream) {
	if rs.finOff < 0 || rs.done {
		return
	}
	// Walk contiguous segments from 0.
	var buf []byte
	off := uint64(0)
	for int64(off) < rs.finOff {
		seg, ok := rs.segs[off]
		if !ok {
			return // gap
		}
		buf = append(buf, seg...)
		off += uint64(len(seg))
	}
	rs.done = true
	rs.segs = nil
	c.stats.MessagesDelivered++
	if c.onMessage != nil {
		c.onMessage(Message{StreamID: id, Data: buf, At: now})
	}
}

// queueAck registers pn for acknowledgment, flushing immediately every
// second packet or after max_ack_delay.
func (c *Conn) queueAck(pn uint64) {
	c.pendingAcks = append(c.pendingAcks, pn)
	if len(c.pendingAcks) >= 2 {
		c.flushAcks()
		return
	}
	if c.ackTimer == nil {
		c.ackTimer = c.sched.After(25*simtime.Millisecond, func() {
			c.ackTimer = nil
			c.flushAcks()
		})
	}
}

func (c *Conn) flushAcks() {
	if len(c.pendingAcks) == 0 || c.closed {
		return
	}
	pkt := c.shortHeader(c.nextPN)
	c.nextPN++
	payload := []byte{frameAck}
	payload = AppendVarint(payload, uint64(len(c.pendingAcks)))
	for _, pn := range c.pendingAcks {
		payload = AppendVarint(payload, pn)
	}
	c.pendingAcks = c.pendingAcks[:0]
	c.scramble(payload)
	pkt = append(pkt, payload...)
	c.stats.AcksSent++
	c.sendRaw(pkt, 0)
}

func (c *Conn) parseAck(p []byte) ([]byte, bool) {
	count, n, err := Varint(p)
	if err != nil || count > 1<<20 {
		return nil, false
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		pn, n, err := Varint(p)
		if err != nil {
			return nil, false
		}
		p = p[n:]
		if sp, ok := c.unacked[pn]; ok {
			sp.timer.Cancel()
			delete(c.unacked, pn)
		}
	}
	return p, true
}

// IsQUIC classifies a UDP payload as QUIC by its header form bits — the
// heuristic the paper's Wireshark analysis relies on.
func IsQUIC(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	b := payload[0]
	if b&0xC0 == 0xC0 { // long header with fixed bit
		return len(payload) >= 5 && binary.BigEndian.Uint32(payload[1:5]) == version
	}
	return b&0xC0 == 0x40 // short header: fixed bit set, long bit clear
}

// String renders stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d recv=%d bytes=%d rtx=%d msgs=%d",
		s.PacketsSent, s.PacketsReceived, s.BytesSent, s.Retransmissions, s.MessagesDelivered)
}

// DCID extracts the destination connection ID of a QUIC packet, or 0 if the
// packet is unparseable.
func DCID(payload []byte) uint64 {
	if len(payload) == 0 {
		return 0
	}
	switch payload[0] {
	case headerLong:
		if len(payload) >= 13 {
			return binary.BigEndian.Uint64(payload[5:13])
		}
	case headerShort:
		if len(payload) >= 9 {
			return binary.BigEndian.Uint64(payload[1:9])
		}
	}
	return 0
}

// Demux routes packets arriving on a shared link to the Conn whose ID
// matches the packet's DCID — how one UDP socket hosts many QUIC
// connections.
type Demux struct {
	conns map[uint64]*Conn
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux { return &Demux{conns: map[uint64]*Conn{}} }

// Add registers a connection by its local ID.
func (d *Demux) Add(c *Conn) { d.conns[c.connID] = c }

// Handler is the netem link handler that dispatches by DCID.
func (d *Demux) Handler(now simtime.Time, f netem.Frame) {
	if c, ok := d.conns[DCID(f.Payload)]; ok {
		c.Deliver(now, f)
	}
}
