package quic

import "errors"

// ErrVarint reports a malformed variable-length integer.
var ErrVarint = errors.New("quic: bad varint")

// maxVarint is the largest value a QUIC varint can carry (2^62-1).
const maxVarint = 1<<62 - 1

// AppendVarint appends v in RFC 9000 variable-length encoding (2-bit length
// prefix, big endian). v must be < 2^62.
func AppendVarint(b []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(b, byte(v))
	case v < 1<<14:
		return append(b, 0x40|byte(v>>8), byte(v))
	case v < 1<<30:
		return append(b, 0x80|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v <= maxVarint:
		return append(b, 0xC0|byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		panic("quic: varint overflow")
	}
}

// VarintLen reports how many bytes AppendVarint uses for v, letting callers
// size a packet buffer exactly before building it.
func VarintLen(v uint64) int {
	switch {
	case v < 1<<6:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<30:
		return 4
	default:
		return 8
	}
}

// Varint decodes a varint from b, returning the value and encoded length.
func Varint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, ErrVarint
	}
	n := 1 << (b[0] >> 6)
	if len(b) < n {
		return 0, 0, ErrVarint
	}
	v := uint64(b[0] & 0x3F)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, n, nil
}
