package quic

import (
	"bytes"
	"testing"
	"testing/quick"

	"telepresence/internal/netem"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, 1<<62 - 1}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		got, n, err := Varint(b)
		if err != nil || got != v || n != len(b) {
			t.Errorf("varint %d: got %d n=%d err=%v", v, got, n, err)
		}
	}
}

func TestVarintLengths(t *testing.T) {
	for _, c := range []struct {
		v    uint64
		want int
	}{{0, 1}, {63, 1}, {64, 2}, {16383, 2}, {16384, 4}, {1<<30 - 1, 4}, {1 << 30, 8}} {
		if got := len(AppendVarint(nil, c.v)); got != c.want {
			t.Errorf("varint %d encodes to %d bytes, want %d", c.v, got, c.want)
		}
	}
}

func TestVarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		v &= maxVarint
		got, _, err := Varint(AppendVarint(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVarintErrors(t *testing.T) {
	if _, _, err := Varint(nil); err == nil {
		t.Error("empty varint accepted")
	}
	if _, _, err := Varint([]byte{0xC0, 1, 2}); err == nil {
		t.Error("truncated 8-byte varint accepted")
	}
}

// pair wires two connections over a bidirectional emulated path.
func pair(s *simtime.Scheduler, cfg netem.Config) (*Conn, *Conn) {
	p := netem.NewPipe(s, simrand.New(42), cfg)
	client := NewConn(s, p.AB, Config{ConnID: 1, Key: 7, IsClient: true})
	server := NewConn(s, p.BA, Config{ConnID: 2, Key: 7})
	p.AB.SetHandler(server.Deliver)
	p.BA.SetHandler(client.Deliver)
	return client, server
}

func TestHandshake(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "hs", DelayMs: 20})
	client.StartHandshake()
	s.RunFor(simtime.Second)
	if !client.Handshook() || !server.Handshook() {
		t.Fatalf("handshake incomplete: client=%v server=%v", client.Handshook(), server.Handshook())
	}
}

func TestMessageDelivery(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "msg", DelayMs: 15})
	var got []Message
	server.OnMessage(func(m Message) {
		// Message.Data is only valid during the callback: copy to retain.
		m.Data = append([]byte(nil), m.Data...)
		got = append(got, m)
	})
	payload := bytes.Repeat([]byte("semantic"), 100)
	client.SendMessage(payload)
	s.RunFor(simtime.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if !bytes.Equal(got[0].Data, payload) {
		t.Error("payload mismatch")
	}
	if got[0].At < simtime.Time(15*simtime.Millisecond) {
		t.Errorf("delivered at %v, before one-way delay", got[0].At)
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "big", DelayMs: 5})
	var got []byte
	server.OnMessage(func(m Message) { got = append([]byte(nil), m.Data...) })
	payload := make([]byte, 50_000) // ~44 packets
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	client.SendMessage(payload)
	s.RunFor(simtime.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembly failed: got %d bytes, want %d", len(got), len(payload))
	}
	if client.Stats().PacketsSent < 40 {
		t.Errorf("only %d packets for a 50 KB message", client.Stats().PacketsSent)
	}
}

func TestMultipleMessagesOrderedStreams(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "multi", DelayMs: 5})
	seen := map[uint64][]byte{}
	server.OnMessage(func(m Message) { seen[m.StreamID] = append([]byte(nil), m.Data...) })
	for i := 0; i < 20; i++ {
		client.SendMessage([]byte{byte(i)})
	}
	s.RunFor(simtime.Second)
	if len(seen) != 20 {
		t.Fatalf("got %d streams, want 20", len(seen))
	}
	for id, data := range seen {
		if want := byte(id / 4); len(data) != 1 || data[0] != want {
			t.Errorf("stream %d carried %v, want [%d]", id, data, want)
		}
	}
}

func TestLossRecovery(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "lossy", DelayMs: 10, LossProb: 0.2})
	delivered := 0
	server.OnMessage(func(m Message) { delivered++ })
	for i := 0; i < 50; i++ {
		i := i
		s.At(simtime.Time(i*10*int(simtime.Millisecond)), func() {
			client.SendMessage(bytes.Repeat([]byte{byte(i)}, 3000)) // 3 packets
		})
	}
	s.RunFor(30 * simtime.Second)
	if delivered != 50 {
		t.Fatalf("delivered %d/50 messages over 20%% loss", delivered)
	}
	if client.Stats().Retransmissions == 0 {
		t.Error("no retransmissions recorded under 20% loss")
	}
}

func TestNoRetransmissionsOnCleanPath(t *testing.T) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "clean", DelayMs: 5})
	server.OnMessage(func(Message) {})
	for i := 0; i < 20; i++ {
		i := i
		s.At(simtime.Time(i*20*int(simtime.Millisecond)), func() {
			client.SendMessage(make([]byte, 500))
		})
	}
	s.RunFor(5 * simtime.Second)
	if rtx := client.Stats().Retransmissions; rtx != 0 {
		t.Errorf("%d spurious retransmissions on a clean path", rtx)
	}
}

func TestPayloadOpaqueOnWire(t *testing.T) {
	// 1-RTT payloads must not appear in cleartext on the wire (the paper
	// could not decrypt spatial-persona traffic).
	s := simtime.NewScheduler()
	p := netem.NewPipe(s, simrand.New(1), netem.Config{Name: "enc", DelayMs: 1})
	client := NewConn(s, p.AB, Config{ConnID: 1, Key: 99, IsClient: true})
	server := NewConn(s, p.BA, Config{ConnID: 2, Key: 99})
	secret := []byte("SPATIAL_PERSONA_KEYPOINTS_SECRET")
	var wire [][]byte
	p.AB.AddTap(func(_ simtime.Time, f netem.Frame, d netem.Direction) {
		if d == netem.Ingress {
			wire = append(wire, append([]byte(nil), f.Payload...))
		}
	})
	p.AB.SetHandler(server.Deliver)
	p.BA.SetHandler(client.Deliver)
	var got []byte
	server.OnMessage(func(m Message) { got = append([]byte(nil), m.Data...) })
	client.SendMessage(secret)
	s.RunFor(simtime.Second)
	if !bytes.Equal(got, secret) {
		t.Fatal("message not delivered")
	}
	for _, w := range wire {
		if bytes.Contains(w, secret) {
			t.Fatal("cleartext payload observable on the wire")
		}
	}
}

func TestIsQUICClassification(t *testing.T) {
	s := simtime.NewScheduler()
	p := netem.NewPipe(s, simrand.New(2), netem.Config{Name: "cls", DelayMs: 1})
	client := NewConn(s, p.AB, Config{ConnID: 5, Key: 1, IsClient: true})
	server := NewConn(s, p.BA, Config{ConnID: 6, Key: 1})
	var payloads [][]byte
	p.AB.AddTap(func(_ simtime.Time, f netem.Frame, d netem.Direction) {
		if d == netem.Ingress {
			payloads = append(payloads, append([]byte(nil), f.Payload...))
		}
	})
	p.AB.SetHandler(server.Deliver)
	p.BA.SetHandler(client.Deliver)
	client.StartHandshake()
	client.SendMessage([]byte("x"))
	s.RunFor(simtime.Second)
	if len(payloads) < 2 {
		t.Fatal("expected handshake + data packets")
	}
	for i, pl := range payloads {
		if !IsQUIC(pl) {
			t.Errorf("packet %d not classified as QUIC", i)
		}
	}
	// Non-QUIC payloads are rejected.
	if IsQUIC([]byte{0x80, 0, 0, 0, 2}) {
		t.Error("RTP-looking payload classified as QUIC")
	}
	if IsQUIC(nil) {
		t.Error("empty payload classified as QUIC")
	}
}

func TestCloseStopsRetransmission(t *testing.T) {
	s := simtime.NewScheduler()
	client, _ := pair(s, netem.Config{Name: "close", DelayMs: 5, LossProb: 1})
	client.SendMessage([]byte("doomed"))
	client.Close()
	s.RunFor(10 * simtime.Second)
	if rtx := client.Stats().Retransmissions; rtx != 0 {
		t.Errorf("%d retransmissions after Close", rtx)
	}
}

func TestZeroConnIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero conn id accepted")
		}
	}()
	s := simtime.NewScheduler()
	p := netem.NewPipe(s, simrand.New(3), netem.Config{Name: "bad"})
	NewConn(s, p.AB, Config{ConnID: 0})
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Error("empty stats string")
	}
}

func TestMalformedPacketsIgnored(t *testing.T) {
	s := simtime.NewScheduler()
	_, server := pair(s, netem.Config{Name: "mal", DelayMs: 1})
	for _, b := range [][]byte{nil, {0}, {headerShort}, {headerLong, 1}, bytes.Repeat([]byte{0xFF}, 30)} {
		server.Deliver(s.Now(), netem.Frame{Payload: b}) // must not panic
	}
}

func BenchmarkSendReceive(b *testing.B) {
	s := simtime.NewScheduler()
	client, server := pair(s, netem.Config{Name: "bench", DelayMs: 1})
	n := 0
	server.OnMessage(func(Message) { n++ })
	payload := make([]byte, 900)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.SendMessage(payload)
		s.RunFor(5 * simtime.Millisecond)
	}
	if n == 0 {
		b.Fatal("nothing delivered")
	}
}
