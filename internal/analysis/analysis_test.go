package analysis

import (
	"math"
	"testing"

	"telepresence/internal/capture"
	"telepresence/internal/netem"
	"telepresence/internal/quic"
	"telepresence/internal/rtp"
	"telepresence/internal/simrand"
	"telepresence/internal/simtime"
)

func TestClassify(t *testing.T) {
	rtpPkt := (&rtp.Header{PayloadType: rtp.PTGenericVideo, Seq: 1}).Marshal(nil)
	if Classify(rtpPkt) != ProtoRTP {
		t.Error("RTP not classified")
	}
	quicLong := append([]byte{0xC0, 0, 0, 0, 1}, make([]byte, 20)...)
	if Classify(quicLong) != ProtoQUIC {
		t.Error("QUIC long header not classified")
	}
	if Classify([]byte{0x00, 0x01}) != ProtoUnknown {
		t.Error("garbage classified")
	}
	if Classify(nil) != ProtoUnknown {
		t.Error("nil classified")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoQUIC.String() != "QUIC" || ProtoRTP.String() != "RTP" || ProtoUnknown.String() != "unknown" {
		t.Error("protocol strings wrong")
	}
}

func mkRecords(times []simtime.Time, sizes []int) []capture.Record {
	out := make([]capture.Record, len(times))
	for i := range times {
		out[i] = capture.Record{At: times[i], Size: sizes[i], Link: "l", Dir: netem.Egress}
	}
	return out
}

func TestThroughputSeries(t *testing.T) {
	// 1250 bytes every 10 ms = 1 Mbps.
	var times []simtime.Time
	var sizes []int
	for i := 0; i < 300; i++ {
		times = append(times, simtime.Time(i*10*int(simtime.Millisecond)))
		sizes = append(sizes, 1250)
	}
	series := ThroughputSeries(mkRecords(times, sizes), simtime.Second)
	if len(series) != 3 {
		t.Fatalf("%d bins, want 3", len(series))
	}
	for i, mbps := range series {
		if math.Abs(mbps-1.0) > 0.02 {
			t.Errorf("bin %d = %.3f Mbps, want 1.0", i, mbps)
		}
	}
}

func TestThroughputSeriesEmpty(t *testing.T) {
	if ThroughputSeries(nil, simtime.Second) != nil {
		t.Error("empty capture should yield nil series")
	}
	if ThroughputSeries(mkRecords([]simtime.Time{1}, []int{1}), 0) != nil {
		t.Error("zero bin should yield nil")
	}
}

func TestMeanMbps(t *testing.T) {
	// 10 MB over 10 seconds = 8 Mbps.
	recs := mkRecords(
		[]simtime.Time{0, simtime.Time(10 * simtime.Second)},
		[]int{5_000_000, 5_000_000},
	)
	if got := MeanMbps(recs); math.Abs(got-8) > 0.01 {
		t.Errorf("MeanMbps = %v, want 8", got)
	}
	if MeanMbps(nil) != 0 {
		t.Error("empty capture mean should be 0")
	}
}

func TestInterarrival(t *testing.T) {
	recs := mkRecords(
		[]simtime.Time{0, simtime.Time(10 * simtime.Millisecond), simtime.Time(30 * simtime.Millisecond)},
		[]int{1, 1, 1},
	)
	s := InterarrivalMs(recs)
	if s.N() != 2 {
		t.Fatalf("N = %d, want 2", s.N())
	}
	if s.Mean() != 15 {
		t.Errorf("mean gap = %v ms, want 15", s.Mean())
	}
}

// End-to-end: capture real QUIC traffic off a netem link and verify the
// paper's methodology identifies it and measures its rate.
func TestCaptureClassifyAndMeasureQUIC(t *testing.T) {
	s := simtime.NewScheduler()
	p := netem.NewPipe(s, simrand.New(1), netem.Config{Name: "ap", DelayMs: 5})
	client := quic.NewConn(s, p.AB, quic.Config{ConnID: 1, Key: 3, IsClient: true})
	server := quic.NewConn(s, p.BA, quic.Config{ConnID: 2, Key: 3})
	p.AB.SetHandler(server.Deliver)
	p.BA.SetHandler(client.Deliver)

	cap := capture.New("ap")
	cap.SetRetain(true) // this test runs record-level analysis
	cap.Attach(p.AB)

	server.OnMessage(func(quic.Message) {})
	// 900 bytes every 11.1 ms (90 FPS) for 2 seconds ~ 0.65 Mbps.
	tick := simtime.Second / 90
	var ticker *simtime.Ticker
	ticker = simtime.NewTicker(s, tick, func(now simtime.Time) {
		client.SendMessage(make([]byte, 900))
		if now > simtime.Time(2*simtime.Second) {
			ticker.Stop()
		}
	})
	s.RunFor(3 * simtime.Second)

	egress := cap.Egress()
	if len(egress) == 0 {
		t.Fatal("nothing captured")
	}
	proto, counts := ClassifyCapture(egress)
	if proto != ProtoQUIC {
		t.Fatalf("classified as %v (counts %v), want QUIC", proto, counts)
	}
	mbps := MeanMbps(egress)
	if mbps < 0.5 || mbps > 0.9 {
		t.Errorf("measured %.2f Mbps, want ~0.67", mbps)
	}
	sum := Summarize(egress)
	if len(sum) != 1 || sum[0].Protocol != ProtoQUIC {
		t.Errorf("summary = %v", sum)
	}
	if sum[0].String() == "" {
		t.Error("empty summary string")
	}
}

func TestCaptureSnapLen(t *testing.T) {
	s := simtime.NewScheduler()
	l := netem.NewLink(s, simrand.New(2), netem.Config{Name: "snap"})
	c := capture.New("c")
	c.SetRetain(true)
	c.Attach(l)
	l.SetHandler(func(simtime.Time, netem.Frame) {})
	l.Send(netem.Frame{Size: 5000, Payload: make([]byte, 5000)})
	s.Run()
	for _, r := range c.Records() {
		if len(r.Payload) > capture.SnapLen {
			t.Errorf("payload %d exceeds snaplen", len(r.Payload))
		}
		if r.Size != 5000 {
			t.Errorf("record size %d, want 5000 (full wire size)", r.Size)
		}
	}
	if c.Len() != 2 { // ingress + egress
		t.Errorf("captured %d records, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestThroughputSampleDropsPartialWindows(t *testing.T) {
	var times []simtime.Time
	var sizes []int
	for i := 0; i < 500; i++ {
		times = append(times, simtime.Time(i*10*int(simtime.Millisecond)))
		sizes = append(sizes, 1250)
	}
	sm := ThroughputSample(mkRecords(times, sizes), simtime.Second)
	if sm.N() != 3 { // 5 bins minus first and last
		t.Errorf("sample N = %d, want 3", sm.N())
	}
}
