// Package analysis turns packet captures into the measurements the paper
// reports: protocol classification (QUIC vs RTP, §4.1), throughput
// distributions (Figure 5, Figure 7c), and inter-arrival statistics. It
// works strictly from headers and sizes — payloads are end-to-end encrypted
// (§5) — mirroring the paper's passive methodology.
package analysis

import (
	"fmt"

	"telepresence/internal/capture"
	"telepresence/internal/quic"
	"telepresence/internal/rtp"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
)

// Protocol is the classification result for a packet or flow.
type Protocol int

// Classifications.
const (
	ProtoUnknown Protocol = iota
	ProtoQUIC
	ProtoRTP
)

func (p Protocol) String() string {
	switch p {
	case ProtoQUIC:
		return "QUIC"
	case ProtoRTP:
		return "RTP"
	default:
		return "unknown"
	}
}

// Classify identifies the protocol of a single payload prefix.
func Classify(payload []byte) Protocol {
	switch {
	case rtp.IsRTP(payload):
		return ProtoRTP
	case quic.IsQUIC(payload):
		return ProtoQUIC
	default:
		return ProtoUnknown
	}
}

// ClassIndex adapts Classify to the capture package's streaming Classifier
// signature, so protocol counting happens online at the tap with no payload
// retention.
func ClassIndex(payload []byte) int { return int(Classify(payload)) }

// ClassifyCapture classifies a whole capture by majority vote over frames
// that carry enough payload to judge, returning the verdict and the per-
// protocol packet counts.
func ClassifyCapture(recs []capture.Record) (Protocol, map[Protocol]int) {
	counts := map[Protocol]int{}
	for _, r := range recs {
		if len(r.Payload) == 0 {
			continue
		}
		counts[Classify(r.Payload)]++
	}
	best, bestN := ProtoUnknown, 0
	for p, n := range counts {
		if p != ProtoUnknown && n > bestN {
			best, bestN = p, n
		}
	}
	return best, counts
}

// ThroughputSeries bins delivered bytes into fixed windows and returns one
// Mbps sample per window — the time series behind the paper's box plots.
func ThroughputSeries(recs []capture.Record, bin simtime.Duration) []float64 {
	if bin <= 0 || len(recs) == 0 {
		return nil
	}
	var start, end simtime.Time
	start, end = recs[0].At, recs[0].At
	for _, r := range recs {
		if r.At < start {
			start = r.At
		}
		if r.At > end {
			end = r.At
		}
	}
	n := int(end.Sub(start)/bin) + 1
	bytesPerBin := make([]int64, n)
	for _, r := range recs {
		i := int(r.At.Sub(start) / bin)
		bytesPerBin[i] += int64(r.Size)
	}
	out := make([]float64, n)
	binSec := float64(bin) / float64(simtime.Second)
	for i, b := range bytesPerBin {
		out[i] = float64(b) * 8 / binSec / 1e6
	}
	return out
}

// ThroughputSample is ThroughputSeries collected into a stats.Sample,
// dropping the first and last (partial) windows as the paper's tools do.
func ThroughputSample(recs []capture.Record, bin simtime.Duration) *stats.Sample {
	series := ThroughputSeries(recs, bin)
	s := &stats.Sample{}
	if len(series) > 2 {
		s.Add(series[1 : len(series)-1]...)
	} else {
		s.Add(series...)
	}
	return s
}

// MeanMbps computes average goodput over the capture's span.
func MeanMbps(recs []capture.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	var bytes int64
	start, end := recs[0].At, recs[0].At
	for _, r := range recs {
		bytes += int64(r.Size)
		if r.At < start {
			start = r.At
		}
		if r.At > end {
			end = r.At
		}
	}
	sec := end.Sub(start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(bytes) * 8 / sec / 1e6
}

// InterarrivalMs returns the inter-arrival gaps between consecutive records
// in milliseconds — a packet-timing fingerprint usable without decryption
// (§5's suggested direction).
func InterarrivalMs(recs []capture.Record) *stats.Sample {
	s := &stats.Sample{}
	for i := 1; i < len(recs); i++ {
		s.Add(float64(recs[i].At.Sub(recs[i-1].At)) / float64(simtime.Millisecond))
	}
	return s
}

// FlowSummary is a one-line description of a captured flow.
type FlowSummary struct {
	Link     string
	Protocol Protocol
	Packets  int
	Bytes    int64
	MeanMbps float64
}

// Summarize produces per-link flow summaries from delivered frames.
func Summarize(recs []capture.Record) []FlowSummary {
	byLink := map[string][]capture.Record{}
	var order []string
	for _, r := range recs {
		if _, ok := byLink[r.Link]; !ok {
			order = append(order, r.Link)
		}
		byLink[r.Link] = append(byLink[r.Link], r)
	}
	var out []FlowSummary
	for _, link := range order {
		rs := byLink[link]
		proto, _ := ClassifyCapture(rs)
		var bytes int64
		for _, r := range rs {
			bytes += int64(r.Size)
		}
		out = append(out, FlowSummary{
			Link: link, Protocol: proto, Packets: len(rs),
			Bytes: bytes, MeanMbps: MeanMbps(rs),
		})
	}
	return out
}

// String formats a flow summary.
func (f FlowSummary) String() string {
	return fmt.Sprintf("%s: %v %d pkts %d B %.3f Mbps", f.Link, f.Protocol, f.Packets, f.Bytes, f.MeanMbps)
}
