// Package ratecontrol implements sender-side congestion control for media
// sessions: the feedback half of the loop the paper's §4.3 experiments show
// missing from spatial personas. A Controller consumes receiver reports
// (internal/rtp's RTCP-style ReceiverReport) arriving over the reverse
// network path and maintains a target bitrate the sender applies to its
// encoder (video.Encoder.SetTargetBps) or, for semantic streams that cannot
// shed per-frame rate, to frame thinning (internal/vca).
//
// Three controllers are provided:
//
//   - "gcc": a GCC-style delay-gradient controller — a trendline estimator
//     over per-report one-way-delay samples detects queue growth before
//     loss occurs, and an AIMD loop (multiplicative increase, backoff to
//     Beta x the measured receive rate) converges near the bottleneck.
//   - "loss": a loss-based AIMD controller, blind to delay. On a drop-tail
//     queue it only reacts after the queue overflows, which is exactly the
//     standing-latency failure the delay-based controller avoids.
//   - "fixed": the open-loop baseline. It ignores feedback and holds the
//     initial target, reproducing the paper's fixed-bitrate senders.
//
// Controllers are deterministic: they draw no randomness, and their state
// advances only on OnFeedback. Same feedback sequence in, same target
// sequence out — the property the fleet's byte-identical golden rows and
// worker-count invariance rest on.
package ratecontrol

import (
	"fmt"

	"telepresence/internal/rtp"
)

// Feedback is one receiver-report observation as seen by the sender.
type Feedback struct {
	// AtMs is the sender-clock arrival time of the report in milliseconds.
	AtMs float64
	// Report is the unmarshaled receiver report.
	Report rtp.ReceiverReport
}

// Controller maps receiver feedback to a sender-side target bitrate.
// Implementations are single-session, single-goroutine state machines.
type Controller interface {
	// OnFeedback ingests one report. Reports must arrive in AtMs order
	// (the simulation's reverse path delivers them in order).
	OnFeedback(fb Feedback)
	// TargetBps returns the current target, always within [Min, Max].
	TargetBps() float64
	// Name identifies the controller kind ("gcc", "loss", "fixed").
	Name() string
}

// Reason codes explain a controller's last decision, for telemetry traces.
// They name the decision actually taken: a backoff suppressed by the
// BackoffGapMs rate limit reads as "hold".
const (
	// ReasonOpenLoop: the controller ignores feedback (fixed).
	ReasonOpenLoop = "open-loop"
	// ReasonHold: feedback processed, target unchanged.
	ReasonHold = "hold"
	// ReasonIncrease: the path is underused; the target grew.
	ReasonIncrease = "increase"
	// ReasonBackoffLoss: reported loss exceeded the backoff threshold.
	ReasonBackoffLoss = "backoff-loss"
	// ReasonBackoffDelay: the one-way-delay trendline signaled queue growth.
	ReasonBackoffDelay = "backoff-delay"
	// ReasonBackoffQueue: standing queuing delay exceeded QueueDelayMs.
	ReasonBackoffQueue = "backoff-queue"
	// ReasonStarved: consecutive empty reports; emergency halving.
	ReasonStarved = "starved"
)

// Reasoner is implemented by controllers that can explain their most recent
// OnFeedback decision. All built-in controllers implement it; the session
// layer feature-tests so external Controller implementations need not.
type Reasoner interface {
	// LastReason returns the reason code of the latest OnFeedback call
	// (ReasonHold before any feedback has arrived).
	LastReason() string
}

// Config parameterizes a controller. The zero value of every field selects
// a sane default (see withDefaults); InitialBps is the only field callers
// typically set.
type Config struct {
	// InitialBps is the starting target (default: MaxBps).
	InitialBps float64
	// MinBps / MaxBps bound the target (defaults 150 kbps / 6 Mbps).
	MinBps, MaxBps float64
	// Beta is the multiplicative backoff factor applied to the measured
	// receive rate on overuse (default 0.85, as in GCC).
	Beta float64
	// IncreasePerSec is the multiplicative increase rate while the path is
	// underused (default 0.08: +8%/s).
	IncreasePerSec float64
	// AdditiveBpsPerSec is the loss controller's additive increase slope
	// (default 100 kbps/s).
	AdditiveBpsPerSec float64
	// LossBackoff / LossIncrease are the loss controller's thresholds:
	// back off above the first, grow below the second (defaults 0.10 and
	// 0.02, the classic GCC loss-controller bands).
	LossBackoff, LossIncrease float64
	// SlopeMsPerSec is the delay controller's overuse threshold on the
	// fitted one-way-delay slope (default 25 ms/s).
	SlopeMsPerSec float64
	// QueueDelayMs is the standing-queue guard: queuing delay (OWD above
	// the running baseline) beyond this triggers backoff even when the
	// trend is flat (default 75 ms).
	QueueDelayMs float64
	// TrendWindow is how many report samples the trendline fits over
	// (default 20).
	TrendWindow int
	// BackoffGapMs is the minimum spacing between consecutive backoffs,
	// letting one rate cut take effect before the next (default 300 ms).
	BackoffGapMs float64
}

// DefaultMinBps is the default lower bound on a controller target; callers
// flooring derived targets (ratecontrol.ApplyOverhead in the session layer)
// share it so their floor and the controller's clamp cannot diverge.
const DefaultMinBps = 150e3

func (c Config) withDefaults() Config {
	if c.MinBps <= 0 {
		c.MinBps = DefaultMinBps
	}
	if c.MaxBps <= 0 {
		c.MaxBps = 6e6
	}
	if c.MaxBps < c.MinBps {
		c.MaxBps = c.MinBps
	}
	if c.InitialBps <= 0 {
		c.InitialBps = c.MaxBps
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.85
	}
	if c.IncreasePerSec <= 0 {
		c.IncreasePerSec = 0.08
	}
	if c.AdditiveBpsPerSec <= 0 {
		c.AdditiveBpsPerSec = 100e3
	}
	if c.LossBackoff <= 0 {
		c.LossBackoff = 0.10
	}
	if c.LossIncrease <= 0 {
		c.LossIncrease = 0.02
	}
	if c.SlopeMsPerSec <= 0 {
		c.SlopeMsPerSec = 25
	}
	if c.QueueDelayMs <= 0 {
		c.QueueDelayMs = 75
	}
	if c.TrendWindow <= 1 {
		c.TrendWindow = 20
	}
	if c.BackoffGapMs <= 0 {
		c.BackoffGapMs = 300
	}
	return c
}

func (c Config) clamp(bps float64) float64 {
	if bps < c.MinBps {
		return c.MinBps
	}
	if bps > c.MaxBps {
		return c.MaxBps
	}
	return bps
}

// Kinds lists the registered controller kinds in grid order: the ccrate and
// ccramp experiments sweep the index into this list, so the order is part
// of the experiments' cell-seed contract and must stay stable.
func Kinds() []string { return []string{"fixed", "loss", "gcc"} }

// New builds a controller of the named kind.
func New(kind string, cfg Config) (Controller, error) {
	cfg = cfg.withDefaults()
	switch kind {
	case "fixed":
		return &Fixed{cfg: cfg, target: cfg.clamp(cfg.InitialBps)}, nil
	case "loss":
		return &LossAIMD{cfg: cfg, target: cfg.clamp(cfg.InitialBps)}, nil
	case "gcc":
		return NewDelayGradient(cfg), nil
	default:
		return nil, fmt.Errorf("ratecontrol: unknown controller kind %q (have %v)", kind, Kinds())
	}
}

// ApplyOverhead charges redundancy overhead (FEC parity, retransmissions —
// internal/recovery) against a controller target: with overheadRatio r of
// redundancy bytes per media byte, the media share of the target is
// target/(1+r), so media plus redundancy together stay within what the
// controller granted. A non-positive ratio leaves the target unchanged; the
// result never falls below minBps (pass 0 for no floor) — a pathological
// overhead estimate must not starve the encoder entirely.
func ApplyOverhead(targetBps, overheadRatio, minBps float64) float64 {
	if overheadRatio > 0 {
		targetBps /= 1 + overheadRatio
	}
	if targetBps < minBps {
		targetBps = minBps
	}
	return targetBps
}

// ------------------------------------------------------------------ Fixed

// Fixed is the open-loop baseline: it holds the initial target forever,
// reproducing the fixed-bitrate senders of the paper's §4.3 experiments.
type Fixed struct {
	cfg    Config
	target float64
}

// OnFeedback ignores the report (open loop).
func (f *Fixed) OnFeedback(Feedback) {}

// TargetBps returns the fixed target.
func (f *Fixed) TargetBps() float64 { return f.target }

// Name returns "fixed".
func (f *Fixed) Name() string { return "fixed" }

// LastReason always reports the open loop.
func (f *Fixed) LastReason() string { return ReasonOpenLoop }

// --------------------------------------------------------------- LossAIMD

// LossAIMD adapts on reported loss alone: back off multiplicatively when
// the interval loss fraction exceeds LossBackoff, grow additively when it
// is below LossIncrease, hold in between. Blind to delay, it tolerates any
// standing queue a drop-tail buffer can hold — the contrast the ccrate and
// ccramp experiments quantify against the delay-gradient controller.
type LossAIMD struct {
	cfg       Config
	target    float64
	lastMs    float64
	haveLast  bool
	lastCutMs float64
	haveCut   bool
	reason    string
}

// OnFeedback applies one AIMD step.
func (l *LossAIMD) OnFeedback(fb Feedback) {
	dtSec := 0.0
	if l.haveLast && fb.AtMs > l.lastMs {
		dtSec = (fb.AtMs - l.lastMs) / 1e3
	}
	l.lastMs = fb.AtMs
	l.haveLast = true

	l.reason = ReasonHold
	loss := fb.Report.FractionLost
	switch {
	case loss > l.cfg.LossBackoff:
		if !l.haveCut || fb.AtMs-l.lastCutMs >= l.cfg.BackoffGapMs {
			l.target = l.cfg.clamp(l.target * (1 - 0.5*loss))
			l.lastCutMs = fb.AtMs
			l.haveCut = true
			l.reason = ReasonBackoffLoss
		}
	case loss < l.cfg.LossIncrease:
		if next := l.cfg.clamp(l.target + l.cfg.AdditiveBpsPerSec*dtSec); next > l.target {
			l.target = next
			l.reason = ReasonIncrease
		}
	}
}

// TargetBps returns the current target.
func (l *LossAIMD) TargetBps() float64 { return l.target }

// Name returns "loss".
func (l *LossAIMD) Name() string { return "loss" }

// LastReason reports the latest decision.
func (l *LossAIMD) LastReason() string {
	if l.reason == "" {
		return ReasonHold
	}
	return l.reason
}

// ---------------------------------------------------------- DelayGradient

// DelayGradient is the GCC-style delay-based controller: a least-squares
// trendline over the per-report mean one-way delay estimates the queue's
// growth rate; a positive slope past the threshold (or a standing queue
// past QueueDelayMs) signals overuse, and the target backs off to Beta x
// the measured receive rate. While the path is underused the target grows
// multiplicatively, capped at 1.5x the receive rate so an app-limited
// sender cannot run the estimate away from reality.
type DelayGradient struct {
	cfg    Config
	target float64

	// Trendline window: (time sec, owd ms) samples in arrival order.
	tSec, owdMs []float64

	// baselineMs tracks the propagation floor of the observed OWD. It only
	// leaks upward (1 ms per report), so a route change that raises the
	// floor re-baselines within seconds instead of reading as a permanent
	// standing queue.
	baselineMs   float64
	haveBaseline bool

	lastMs    float64
	haveLast  bool
	lastCutMs float64
	haveCut   bool
	starved   int // consecutive reports with zero receive rate
	reason    string
}

// NewDelayGradient returns a delay-gradient controller with cfg's bounds.
func NewDelayGradient(cfg Config) *DelayGradient {
	cfg = cfg.withDefaults()
	return &DelayGradient{cfg: cfg, target: cfg.clamp(cfg.InitialBps)}
}

// OnFeedback ingests one report and advances the AIMD state machine.
func (d *DelayGradient) OnFeedback(fb Feedback) {
	dtSec := 0.0
	if d.haveLast && fb.AtMs > d.lastMs {
		dtSec = (fb.AtMs - d.lastMs) / 1e3
	}
	d.lastMs = fb.AtMs
	d.haveLast = true

	rep := fb.Report
	d.reason = ReasonHold
	if rep.RecvRateBps <= 0 {
		// Nothing arrived this interval. One empty report is a scheduling
		// artifact; two in a row mean the path is starved (everything is
		// queued or lost) and the only safe move is down.
		d.starved++
		if d.starved >= 2 && d.cut(fb.AtMs, d.target*0.5) {
			d.reason = ReasonStarved
		}
		return
	}
	d.starved = 0

	if rep.MeanOwdMs > 0 {
		if !d.haveBaseline || rep.MeanOwdMs < d.baselineMs {
			d.baselineMs = rep.MeanOwdMs
			d.haveBaseline = true
		} else {
			// Slow upward leak (10 ms/s of elapsed time, so the rate does
			// not depend on the report frequency): re-baselines within
			// seconds after a route change raises the propagation floor.
			d.baselineMs += 10 * dtSec
		}
		d.tSec = append(d.tSec, fb.AtMs/1e3)
		d.owdMs = append(d.owdMs, rep.MeanOwdMs)
		if n := len(d.tSec) - d.cfg.TrendWindow; n > 0 {
			d.tSec = append(d.tSec[:0], d.tSec[n:]...)
			d.owdMs = append(d.owdMs[:0], d.owdMs[n:]...)
		}
	}

	queueMs := 0.0
	if d.haveBaseline && rep.MeanOwdMs > d.baselineMs {
		queueMs = rep.MeanOwdMs - d.baselineMs
	}
	slope := trendSlope(d.tSec, d.owdMs)

	overuse := ""
	switch {
	case rep.FractionLost > 0.25:
		// Heavy loss: the delay signal alone cannot see a policer.
		overuse = ReasonBackoffLoss
	case queueMs > d.cfg.QueueDelayMs:
		overuse = ReasonBackoffQueue
	case len(d.tSec) >= 4 && slope > d.cfg.SlopeMsPerSec && queueMs > 5:
		overuse = ReasonBackoffDelay
	}
	if overuse != "" {
		if d.cut(fb.AtMs, d.cfg.Beta*rep.RecvRateBps) {
			d.reason = overuse
		}
		return
	}

	// Underuse / normal: multiplicative increase, bounded by what is
	// actually flowing so an app-limited estimate cannot run away.
	next := d.target * (1 + d.cfg.IncreasePerSec*dtSec)
	if lim := 1.5 * rep.RecvRateBps; next > lim {
		next = lim
	}
	if next > d.target {
		d.target = d.cfg.clamp(next)
		d.reason = ReasonIncrease
	}
}

// cut applies one backoff, rate-limited to one per BackoffGapMs, and resets
// the trendline so the pre-cut queue growth cannot re-trigger immediately.
// It reports whether the backoff was applied.
func (d *DelayGradient) cut(atMs, toBps float64) bool {
	if d.haveCut && atMs-d.lastCutMs < d.cfg.BackoffGapMs {
		return false
	}
	if toBps > d.target {
		toBps = d.target // a backoff never raises the target
	}
	d.target = d.cfg.clamp(toBps)
	d.lastCutMs = atMs
	d.haveCut = true
	d.tSec = d.tSec[:0]
	d.owdMs = d.owdMs[:0]
	return true
}

// TargetBps returns the current target.
func (d *DelayGradient) TargetBps() float64 { return d.target }

// Name returns "gcc".
func (d *DelayGradient) Name() string { return "gcc" }

// LastReason reports the latest decision.
func (d *DelayGradient) LastReason() string {
	if d.reason == "" {
		return ReasonHold
	}
	return d.reason
}

// QueueDelayEstimateMs reports the current standing-queue estimate (last
// OWD sample above the baseline), for tests and diagnostics.
func (d *DelayGradient) QueueDelayEstimateMs() float64 {
	if !d.haveBaseline || len(d.owdMs) == 0 {
		return 0
	}
	if last := d.owdMs[len(d.owdMs)-1]; last > d.baselineMs {
		return last - d.baselineMs
	}
	return 0
}

// trendSlope fits owd = a + b*t by least squares and returns b (ms per
// second), or 0 with fewer than two distinct samples.
func trendSlope(tSec, owdMs []float64) float64 {
	n := float64(len(tSec))
	if n < 2 {
		return 0
	}
	var sumT, sumY, sumTT, sumTY float64
	for i := range tSec {
		sumT += tSec[i]
		sumY += owdMs[i]
		sumTT += tSec[i] * tSec[i]
		sumTY += tSec[i] * owdMs[i]
	}
	den := n*sumTT - sumT*sumT
	if den <= 0 {
		return 0
	}
	return (n*sumTY - sumT*sumY) / den
}
