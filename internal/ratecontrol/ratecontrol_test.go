package ratecontrol

import (
	"testing"

	"telepresence/internal/rtp"
)

// fb builds one feedback observation with the fields controllers read.
func fb(atMs, owdMs, rateBps, fracLost float64) Feedback {
	return Feedback{AtMs: atMs, Report: rtp.ReceiverReport{
		MeanOwdMs: owdMs, RecvRateBps: rateBps, FractionLost: fracLost,
		IntervalMs: 100,
	}}
}

func TestKindsAndNew(t *testing.T) {
	for _, kind := range Kinds() {
		c, err := New(kind, Config{InitialBps: 1e6})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if c.Name() != kind {
			t.Errorf("New(%q).Name() = %q", kind, c.Name())
		}
		if got := c.TargetBps(); got != 1e6 {
			t.Errorf("%s initial target = %v, want 1e6", kind, got)
		}
	}
	if _, err := New("bogus", Config{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConfigDefaultsAndClamp(t *testing.T) {
	c, err := New("fixed", Config{InitialBps: 1e9, MaxBps: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TargetBps(); got != 2e6 {
		t.Errorf("initial target not clamped to MaxBps: %v", got)
	}
	c, _ = New("fixed", Config{InitialBps: 1, MinBps: 3e5})
	if got := c.TargetBps(); got != 3e5 {
		t.Errorf("initial target not clamped to MinBps: %v", got)
	}
}

func TestFixedIgnoresFeedback(t *testing.T) {
	c, _ := New("fixed", Config{InitialBps: 2e6})
	for i := 0; i < 50; i++ {
		c.OnFeedback(fb(float64(i*100), 500, 1e5, 0.5))
	}
	if got := c.TargetBps(); got != 2e6 {
		t.Errorf("fixed target moved to %v", got)
	}
}

func TestLossAIMD(t *testing.T) {
	c, _ := New("loss", Config{InitialBps: 1e6, MaxBps: 2e6})
	// Clean intervals: additive growth.
	for i := 1; i <= 10; i++ {
		c.OnFeedback(fb(float64(i*100), 20, 1e6, 0))
	}
	grown := c.TargetBps()
	if grown <= 1e6 {
		t.Errorf("no additive increase under clean feedback: %v", grown)
	}
	// Heavy loss: multiplicative backoff (rate-limited to one per gap).
	c.OnFeedback(fb(1100, 20, 1e6, 0.4))
	afterCut := c.TargetBps()
	if want := grown * (1 - 0.5*0.4); afterCut != want {
		t.Errorf("backoff target = %v, want %v", afterCut, want)
	}
	// A second loss report inside the backoff gap must not cut again.
	c.OnFeedback(fb(1200, 20, 1e6, 0.4))
	if got := c.TargetBps(); got != afterCut {
		t.Errorf("second cut inside gap: %v -> %v", afterCut, got)
	}
	// Moderate loss between the thresholds: hold.
	c.OnFeedback(fb(1600, 20, 1e6, 0.05))
	if got := c.TargetBps(); got != afterCut {
		t.Errorf("hold band moved the target: %v", got)
	}
}

func TestDelayGradientBacksOffOnRisingOwd(t *testing.T) {
	c, _ := New("gcc", Config{InitialBps: 2e6, MaxBps: 2e6})
	// OWD climbing 100 ms/s at a measured receive rate of 1 Mbps: the
	// trendline must detect overuse and back off toward Beta x 1 Mbps.
	for i := 1; i <= 20; i++ {
		c.OnFeedback(fb(float64(i*100), 30+10*float64(i), 1e6, 0))
	}
	got := c.TargetBps()
	if got > 1e6 {
		t.Errorf("target %v still above the 1 Mbps bottleneck", got)
	}
	if got < 0.5e6 {
		t.Errorf("target %v collapsed below a single backoff", got)
	}
}

func TestDelayGradientGrowsOnFlatOwd(t *testing.T) {
	c, _ := New("gcc", Config{InitialBps: 1e6, MaxBps: 4e6})
	// Flat OWD, receive rate tracking the target: steady growth.
	for i := 1; i <= 100; i++ {
		c.OnFeedback(fb(float64(i*100), 30, c.TargetBps(), 0))
	}
	if got := c.TargetBps(); got < 1.5e6 {
		t.Errorf("target %v did not grow under a clear path", got)
	}
}

func TestDelayGradientIncreaseCappedByRecvRate(t *testing.T) {
	c, _ := New("gcc", Config{InitialBps: 1e6, MaxBps: 10e6})
	// App-limited: receive rate pinned at 1 Mbps. The target must not run
	// past 1.5x what actually flows.
	for i := 1; i <= 200; i++ {
		c.OnFeedback(fb(float64(i*100), 30, 1e6, 0))
	}
	if got := c.TargetBps(); got > 1.5e6 {
		t.Errorf("app-limited target ran away to %v", got)
	}
}

func TestDelayGradientStandingQueueGuard(t *testing.T) {
	c, _ := New("gcc", Config{InitialBps: 2e6})
	// Establish a 30 ms baseline, then jump to a flat 200 ms standing
	// queue: the slope is ~0 after the jump, but the queue guard must cut.
	for i := 1; i <= 5; i++ {
		c.OnFeedback(fb(float64(i*100), 30, 2e6, 0))
	}
	for i := 6; i <= 12; i++ {
		c.OnFeedback(fb(float64(i*100), 200, 1e6, 0))
	}
	if got := c.TargetBps(); got > 0.9e6 {
		t.Errorf("standing queue not detected: target %v", got)
	}
}

func TestDelayGradientStarvation(t *testing.T) {
	c, _ := New("gcc", Config{InitialBps: 2e6, MinBps: 2e5})
	c.OnFeedback(fb(100, 30, 2e6, 0))
	// Two consecutive empty intervals halve the target.
	c.OnFeedback(Feedback{AtMs: 200, Report: rtp.ReceiverReport{IntervalMs: 100}})
	c.OnFeedback(Feedback{AtMs: 300, Report: rtp.ReceiverReport{IntervalMs: 100}})
	if got := c.TargetBps(); got >= 2e6 {
		t.Errorf("starved path did not back off: %v", got)
	}
}

func TestDelayGradientDeterminism(t *testing.T) {
	run := func() []float64 {
		c, _ := New("gcc", Config{InitialBps: 2e6})
		var out []float64
		for i := 1; i <= 50; i++ {
			owd := 30.0
			if i > 20 {
				owd = 30 + 20*float64(i-20)
			}
			c.OnFeedback(fb(float64(i*100), owd, 1.2e6, 0))
			out = append(out, c.TargetBps())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("target sequence diverges at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrendSlope(t *testing.T) {
	if s := trendSlope([]float64{0, 1, 2, 3}, []float64{10, 20, 30, 40}); s < 9.99 || s > 10.01 {
		t.Errorf("slope = %v, want 10", s)
	}
	if s := trendSlope([]float64{1}, []float64{5}); s != 0 {
		t.Errorf("degenerate slope = %v, want 0", s)
	}
	if s := trendSlope([]float64{2, 2, 2}, []float64{1, 2, 3}); s != 0 {
		t.Errorf("zero-variance slope = %v, want 0", s)
	}
}

func TestApplyOverhead(t *testing.T) {
	if got := ApplyOverhead(1e6, 0, 0); got != 1e6 {
		t.Errorf("zero overhead changed the target: %v", got)
	}
	if got := ApplyOverhead(1.2e6, 0.2, 0); got != 1e6 {
		t.Errorf("20%% overhead: %v, want 1e6", got)
	}
	// Media (target/(1+r)) plus redundancy (r x media) equals the grant.
	media := ApplyOverhead(2e6, 0.15, 0)
	if total := media * 1.15; total < 2e6*0.999 || total > 2e6*1.001 {
		t.Errorf("media+redundancy = %v, want 2e6", total)
	}
	if got := ApplyOverhead(1e6, 9, 300e3); got != 300e3 {
		t.Errorf("floor not applied: %v", got)
	}
	if got := ApplyOverhead(1e6, -1, 0); got != 1e6 {
		t.Errorf("negative ratio changed the target: %v", got)
	}
}
