package simrand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestSplitDeterministicAndDecorrelated(t *testing.T) {
	a1 := New(7).Split("net")
	a2 := New(7).Split("net")
	b := New(7).Split("render")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		x1, x2, y := a1.Float64(), a2.Float64(), b.Float64()
		if x1 == x2 {
			same++
		}
		if x1 != y {
			diff++
		}
	}
	if same != 100 {
		t.Errorf("same-label splits matched %d/100 draws", same)
	}
	if diff < 99 {
		t.Errorf("different-label splits agreed too often: %d/100 differ", diff)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(1)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Normal(5, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ~5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("std = %v, want ~2", std)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(2)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal draw %v <= 0", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(3)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(10)
	}
	if m := sum / n; math.Abs(m-10) > 0.2 {
		t.Errorf("exponential mean = %v, want ~10", m)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(4)
	check := func(a, b float64) bool {
		// Constrain to a sane magnitude so hi-lo cannot overflow; the
		// simulation only ever draws physical quantities.
		lo := math.Mod(a, 1e6)
		hi := lo + 1 + math.Abs(math.Mod(b, 1e6))
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("bernoulli rate = %v, want ~0.3", rate)
	}
}

func TestOUMeanReversion(t *testing.T) {
	s := New(6)
	ou := NewOU(s, 1.0, 4.0, 0.5)
	ou.Reset(10)
	// After many mean-reversion time constants the process should hover
	// near its mean with stationary std sigma/sqrt(2 theta) ~ 0.177.
	var sum float64
	const n = 50000
	for i := 0; i < 2000; i++ { // burn-in
		ou.Step(0.01)
	}
	for i := 0; i < n; i++ {
		sum += ou.Step(0.01)
	}
	if m := sum / n; math.Abs(m-1.0) > 0.05 {
		t.Errorf("OU long-run mean = %v, want ~1", m)
	}
}

func TestOUStationaryVariance(t *testing.T) {
	s := New(7)
	theta, sigma := 2.0, 0.8
	ou := NewOU(s, 0, theta, sigma)
	var sum2 float64
	const n = 100000
	for i := 0; i < 1000; i++ {
		ou.Step(0.02)
	}
	for i := 0; i < n; i++ {
		x := ou.Step(0.02)
		sum2 += x * x
	}
	want := sigma * sigma / (2 * theta)
	got := sum2 / n
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("stationary variance = %v, want ~%v", got, want)
	}
}

func TestOUZeroDtNoChange(t *testing.T) {
	ou := NewOU(New(8), 0, 1, 1)
	ou.Reset(3.5)
	if got := ou.Step(0); got != 3.5 {
		t.Errorf("Step(0) = %v, want 3.5", got)
	}
	if ou.Value() != 3.5 {
		t.Errorf("Value() = %v, want 3.5", ou.Value())
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	p := s.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestChildSeedPureAndDistinct(t *testing.T) {
	// Pure: the same (seed, label) always yields the same child seed, no
	// matter how many other children were derived first.
	a := ChildSeed(1, "fig5/rep0")
	for i := 0; i < 100; i++ {
		ChildSeed(1, "noise")
	}
	if ChildSeed(1, "fig5/rep0") != a {
		t.Error("ChildSeed not pure")
	}
	// Distinct labels and distinct parents decorrelate.
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 2, 42} {
		for _, label := range []string{"a", "b", "rep0", "rep1", "rep10"} {
			c := ChildSeed(seed, label)
			key := string(rune(seed)) + "/" + label
			if prev, ok := seen[c]; ok {
				t.Errorf("collision: %s and %s both map to %d", prev, key, c)
			}
			seen[c] = key
		}
	}
}

func TestChildStreamsIndependent(t *testing.T) {
	// Streams from sibling children should not be correlated.
	a, b := Child(7, "rep0"), Child(7, "rep1")
	var cov, va, vb float64
	const n = 4096
	for i := 0; i < n; i++ {
		x, y := a.Float64()-0.5, b.Float64()-0.5
		cov += x * y
		va += x * x
		vb += y * y
	}
	if r := cov / math.Sqrt(va*vb); math.Abs(r) > 0.08 {
		t.Errorf("sibling child streams correlate: r = %.3f", r)
	}
	// Same label replays identically.
	c, d := Child(7, "rep0"), Child(7, "rep0")
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same-label child streams diverge")
		}
	}
}

// TestZigguratMatchesStdlib pins the ported normal sampler to math/rand:
// both must consume the source stream identically and return bit-identical
// draws, or every seeded experiment result downstream would move.
func TestZigguratMatchesStdlib(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := New(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 200000; i++ {
			got := a.normFloat64()
			want := ref.NormFloat64()
			if got != want {
				t.Fatalf("seed %d draw %d: %v != %v", seed, i, got, want)
			}
		}
	}
}
