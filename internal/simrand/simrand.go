// Package simrand provides seeded random-variate generators used across the
// simulation: normal/lognormal draws for network jitter, Ornstein-Uhlenbeck
// processes for natural head/hand motion, and helpers for deriving
// independent sub-streams from one experiment seed.
package simrand

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers the simulation needs. The raw source is kept
// alongside the *rand.Rand so the hot normal sampler (ziggurat.go) can
// draw from the same stream without the wrapper overhead.
type Source struct {
	r   *rand.Rand
	src rand.Source
}

// New returns a source seeded with seed.
func New(seed int64) *Source {
	src := rand.NewSource(seed)
	return &Source{r: rand.New(src), src: src}
}

// Split derives an independent sub-stream identified by label. Deriving the
// same label twice yields identical streams; different labels yield
// decorrelated streams. This lets one experiment seed fan out to many
// subsystems without shared-stream coupling.
func (s *Source) Split(label string) *Source {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= uint64(s.r.Int63())
	return New(int64(splitmix64(h)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ChildSeed derives an independent child seed from a parent seed and a
// label, as a pure function: unlike Source.Split it consumes no stream
// state, so callers may derive children in any order (or concurrently) and
// always obtain the same seeds. This is what the fleet scheduler uses to
// shard an experiment's repetitions across workers deterministically.
func ChildSeed(seed int64, label string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return int64(splitmix64(h ^ splitmix64(uint64(seed))))
}

// Child returns a source seeded with ChildSeed(seed, label).
func Child(seed int64, label string) *Source {
	return New(ChildSeed(seed, label))
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform draw in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.normFloat64()
}

// LogNormal returns a lognormal draw parameterized by the mean and stddev of
// the underlying normal. Used for heavy-ish-tailed network jitter.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns an exponential draw with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// OU is a discretized Ornstein-Uhlenbeck (mean-reverting) process. It is the
// canonical model for "natural" continuous motion: head pose drift, gaze
// wander, and conversational hand movement all use it.
type OU struct {
	// Mean is the long-run value the process reverts to.
	Mean float64
	// Theta is the mean-reversion rate (1/s). Larger = snappier return.
	Theta float64
	// Sigma is the diffusion (noise) magnitude.
	Sigma float64

	x   float64
	src *Source

	// Cached discretization coefficients: callers step with a fixed dt
	// (one frame time), so the Exp/Sqrt terms are invariant between
	// parameter changes and need not be recomputed every step.
	cacheDt, cacheTheta, cacheSigma float64
	decay, diff                     float64
}

// NewOU returns an OU process started at its mean.
func NewOU(src *Source, mean, theta, sigma float64) *OU {
	return &OU{Mean: mean, Theta: theta, Sigma: sigma, x: mean, src: src}
}

// Step advances the process by dt seconds and returns the new value, using
// the exact discretization of the OU SDE (valid for any dt).
func (o *OU) Step(dt float64) float64 {
	if dt <= 0 {
		return o.x
	}
	if dt != o.cacheDt || o.Theta != o.cacheTheta || o.Sigma != o.cacheSigma {
		o.decay = math.Exp(-o.Theta * dt)
		var v float64
		if o.Theta > 0 {
			v = o.Sigma * o.Sigma / (2 * o.Theta) * (1 - o.decay*o.decay)
		} else {
			v = o.Sigma * o.Sigma * dt
		}
		o.diff = math.Sqrt(v)
		o.cacheDt, o.cacheTheta, o.cacheSigma = dt, o.Theta, o.Sigma
	}
	o.x = o.Mean + (o.x-o.Mean)*o.decay + o.diff*o.src.normFloat64()
	return o.x
}

// Value returns the current process value without advancing it.
func (o *OU) Value() float64 { return o.x }

// Reset moves the process to x.
func (o *OU) Reset(x float64) { o.x = x }
