module telepresence

go 1.22
