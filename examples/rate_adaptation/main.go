// rate_adaptation reproduces the §4.3 bandwidth-cap experiment: the
// semantic spatial-persona stream cannot shed rate, so capping the uplink
// at 0.7 Mbps (the paper's Linux tc setting) makes the persona go "poor
// connection", while a 2D-video session under the same cap adapts and
// survives.
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func main() {
	fmt.Println("spatial persona (semantic, no rate adaptation):")
	fmt.Println("cap(Mbps)  unavailable  mean frame age(ms)")
	rows, err := tp.RateAdaptation(tp.Quick(31), []float64{0, 2.0, 1.0, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		cap := "none"
		if r.CapMbps > 0 {
			cap = fmt.Sprintf("%.1f", r.CapMbps)
		}
		fmt.Printf("%-10s %-12.0f%% %.1f\n", cap, r.UnavailableFrac*100, r.MeanLatencyMs)
	}

	// Contrast: a Zoom 2D-video session under the same 0.7 Mbps cap. The
	// encoder's rate controller walks its quantizer down and keeps frames
	// flowing (degraded, but alive).
	cfg := tp.DefaultSessionConfig(tp.Zoom, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 12 * tp.Second
	cfg.Seed = 31
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sess.UplinkShaper(0).RateBps = 0.7e6
	res := sess.Run()
	u2 := res.Users[1]
	fmt.Printf("\n2D video (Zoom) under the same 0.7 Mbps cap: %d frames decoded, "+
		"uplink settled at %.2f Mbps\n", u2.FramesDecoded, res.Users[0].Uplink.Mean())
	fmt.Println("\npaper: semantic data must be fully delivered for reconstruction, so the")
	fmt.Println("spatial persona fails hard where conventional video degrades gracefully.")
}
