// ratecontrol compares the three congestion controllers — open-loop
// "fixed" (the paper's §4.3 senders), loss-based AIMD, and the GCC-style
// delay-gradient controller — on the same impaired calls.
//
// Part 1 runs a 2D Zoom call under a static 0.9 Mbps uplink cap: the
// closed loop retargets the video encoder (video.Encoder.SetTargetBps)
// from RTCP-style receiver reports travelling back over the reverse path.
//
// Part 2 runs a spatial FaceTime call under the same cap: semantic frames
// cannot shrink, so the controller sheds rate by thinning the persona
// frame rate instead — turning the paper's "persona dies under a cap"
// finding into a graceful 90->~40 fps degradation.
//
// Run: go run ./examples/ratecontrol
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func controllers() []string { return append([]string{"open-loop"}, tp.RateControllerKinds()[1:]...) }

func rcConfig(name string) *tp.RateControlConfig {
	if name == "open-loop" {
		return nil // no feedback, no controller: the paper's behavior
	}
	return &tp.RateControlConfig{Controller: name}
}

func run(app tp.App, devices [2]tp.Device, rc *tp.RateControlConfig, capMbps float64) (*tp.Session, *tp.SessionResults) {
	cfg := tp.DefaultSessionConfig(app, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: devices[0]},
		{ID: "u2", Loc: tp.NewYork, Device: devices[1]},
	})
	cfg.Duration = 20 * tp.Second
	cfg.Seed = 1
	cfg.RateControl = rc
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sess.UplinkShaper(0).RateBps = capMbps * 1e6
	return sess, sess.Run()
}

func main() {
	const capMbps = 0.9

	fmt.Printf("2D video (Zoom, P2P) under a %.1f Mbps uplink cap, 20 s:\n", capMbps)
	fmt.Printf("%-10s %-12s %-14s %-12s %-10s\n",
		"controller", "unavailable", "frame age", "queue drops", "target")
	for _, name := range controllers() {
		sess, res := run(tp.Zoom, [2]tp.Device{tp.VisionPro, tp.VisionPro}, rcConfig(name), capMbps)
		up := sess.UplinkStats(0)
		target := "1.40 Mbps (pinned)"
		if mean := sess.RateTargetMeanBps(0); mean > 0 {
			target = fmt.Sprintf("%.2f Mbps", mean/1e6)
		}
		fmt.Printf("%-10s %10.1f%% %11.0f ms %12d %-10s\n",
			name, res.Users[1].UnavailableFrac*100, res.Users[1].MeanFrameLatencyMs,
			up.DroppedQueue, target)
	}

	// The spatial stream runs ~0.7 Mbps, so the cap that strangles it is
	// tighter than the 2D one.
	const spatialCapMbps = 0.55
	fmt.Printf("\nspatial persona (FaceTime, all Vision Pro) under a %.2f Mbps cap:\n", spatialCapMbps)
	fmt.Printf("%-10s %-12s %-14s %-12s %-10s\n",
		"controller", "unavailable", "frame age", "thinned", "persona fps")
	for _, name := range controllers() {
		_, res := run(tp.FaceTime, [2]tp.Device{tp.VisionPro, tp.VisionPro}, rcConfig(name), spatialCapMbps)
		u1, u2 := res.Users[0], res.Users[1]
		fps := float64(u1.FramesSent) / 20
		fmt.Printf("%-10s %10.1f%% %11.0f ms %12d %8.0f\n",
			name, u2.UnavailableFrac*100, u2.MeanFrameLatencyMs, u1.FramesThinned, fps)
	}

	fmt.Println("\nThe delay-gradient controller (gcc) keeps the call alive where the")
	fmt.Println("open-loop sender drowns its own queue — and the loss-based controller")
	fmt.Println("shows why delay matters: a drop-tail queue hides congestion from it")
	fmt.Println("until seconds of latency are already standing.")
}
