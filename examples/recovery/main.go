// recovery contrasts loss-recovery strategies on the same bursty channel —
// the repair half every real VCA has and the paper's open-loop senders
// lack. A two-party Zoom call (P2P 2D video) runs under a Gilbert-Elliott
// burst-loss channel (moderate bursting: ~4-frame mean bursts, ~90% loss
// while bad) on the sender's uplink:
//
//   - no recovery: one lost packet stalls the receiver until the frame
//     timeout concedes the frame; availability craters.
//   - nack: the receiver requests retransmissions over the reverse path;
//     nearly every loss repairs within a NACK round trip.
//   - hybrid: XOR parity repairs scattered singles instantly and NACK mops
//     up the bursts, with redundancy adapted from the reported loss.
//
// Run: go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func run(strategy string) (*tp.Session, *tp.SessionResults) {
	cfg := tp.DefaultSessionConfig(tp.Zoom, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 20 * tp.Second
	cfg.Seed = 1
	cfg.VideoFPS = 15
	cfg.FreshnessLimit = 200 * tp.Millisecond
	if strategy != "" {
		cfg.Recovery = &tp.RecoveryConfig{Strategy: strategy}
	}
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Moderate Gilbert-Elliott bursting for the whole call.
	sched := tp.BurstLossSchedule(tp.BurstParams{
		GoodToBad: 0.02, BadToGood: 0.25, LossBad: 0.9,
	}, 0, 0)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		log.Fatal(err)
	}
	return sess, sess.Run()
}

func main() {
	fmt.Println("2D video (Zoom, P2P) under Gilbert-Elliott burst loss, 20 s:")
	fmt.Printf("%-12s %-12s %-10s %-12s %-12s %-10s\n",
		"strategy", "unavailable", "decoded", "repaired", "unrepaired", "overhead")
	for _, strategy := range []string{"", "nack", "hybrid"} {
		label := strategy
		if label == "" {
			label = "no recovery"
		}
		sess, res := run(strategy)
		u1, u2 := res.Users[0], res.Users[1]
		decoded := float64(u2.FramesDecoded) / float64(u1.FramesSent)
		overhead := "-"
		if r := sess.RecoveryOverheadRatio(0); r > 0 {
			overhead = fmt.Sprintf("%.1f%%", r*100)
		}
		fmt.Printf("%-12s %10.1f%% %9.0f%% %12d %12d %10s\n",
			label, u2.UnavailableFrac*100, decoded*100,
			u2.PacketsRepaired, u2.PacketsUnrepaired, overhead)
	}
	fmt.Println("\nunavailable = fraction of the call the remote persona was stale;")
	fmt.Println("overhead    = parity + retransmission bytes per media byte sent.")
}
