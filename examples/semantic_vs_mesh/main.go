// semantic_vs_mesh reproduces the §4.3 "What is Being Delivered?" analysis:
// it prices the three candidate delivery strategies for a spatial persona —
// direct 3D mesh streaming (Draco-class), pre-rendered 2D video, and
// semantic keypoints — and shows the two-orders-of-magnitude gap that led
// the paper to conclude FaceTime uses semantic communication.
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func main() {
	opts := tp.Quick(11)

	// Strategy 1: stream the 3D mesh itself (ten 70-90K-triangle heads,
	// compressed, 90 FPS).
	ms, err := tp.MeshStreaming(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 2: pre-render to 2D video (the FaceTime 2D-persona path,
	// measured on a real simulated session).
	cfg := tp.DefaultSessionConfig(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.MacBook}, // forces 2D video
	})
	cfg.Duration = 8 * tp.Second
	cfg.Seed = 11
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	video := sess.Run().Users[0].Uplink.Mean()

	// Strategy 3: semantic keypoints (74 points, compressed, 90 FPS).
	kp, err := tp.KeypointStreaming(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("delivery strategy            bandwidth        paper")
	fmt.Printf("3D mesh (Draco-class)        %8.1f Mbps    108.4±16.7\n", ms.MbpsSample.Mean())
	fmt.Printf("pre-rendered 2D video        %8.1f Mbps    ~2\n", video)
	fmt.Printf("semantic keypoints           %8.2f Mbps    0.64±0.02\n", kp.MbpsSample.Mean())
	fmt.Printf("\nmesh/semantic ratio: %.0fx (paper: ~170x)\n",
		ms.MbpsSample.Mean()/kp.MbpsSample.Mean())
	fmt.Println("\nonly the semantic estimate matches FaceTime's measured 0.67 Mbps —")
	fmt.Println("the paper's evidence that spatial personas use semantic communication.")
}
