// Quickstart: simulate a two-user FaceTime spatial-persona call between
// Virginia and New York, then print what an observer at each user's WiFi AP
// measures — the paper's core methodology in a dozen lines.
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func main() {
	cfg := tp.DefaultSessionConfig(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 10 * tp.Second
	cfg.Seed = 7

	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := sess.Plan()
	fmt.Printf("media: %v over %v via server %v\n", plan.Media, plan.Transport, plan.Server)

	res := sess.Run()
	for _, u := range res.Users {
		fmt.Printf("%s: uplink %.2f Mbps, downlink %.2f Mbps, protocol %v, "+
			"%d/%d frames decoded, mean frame age %.1f ms\n",
			u.ID, u.Uplink.Mean(), u.Downlink.Mean(), u.Protocol,
			u.FramesDecoded, u.FramesSent, u.MeanFrameLatencyMs)
	}
	fmt.Println("\npaper finding reproduced: the immersive spatial persona runs at ~0.7 Mbps,")
	fmt.Println("less than any of the 2D-persona apps, because it ships keypoints, not pixels.")
}
