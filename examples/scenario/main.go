// scenario demonstrates the declarative impairment engine: the paper's
// §4.3 methodology (tc-injected delays and bandwidth caps applied mid-call)
// expressed as schedules instead of hand-written experiment code. It runs
// one spatial session under a composed timeline — congestion ramp, then a
// handover delay step, then a burst-loss episode — and one under a
// VideoTransDemo-style weak-network trace.
package main

import (
	"fmt"
	"log"
	"strings"

	tp "telepresence"
)

func newSession(seed int64) *tp.Session {
	cfg := tp.DefaultSessionConfig(tp.FaceTime, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 24 * tp.Second
	cfg.Seed = seed
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sess
}

func report(label string, sess *tp.Session) {
	res := sess.Run()
	u2 := res.Users[1]
	up := sess.UplinkStats(0)
	fmt.Printf("%-22s unavailable %5.1f%%  mean frame age %6.1f ms  uplink drops %d (%d queue, %d burst)\n",
		label, u2.UnavailableFrac*100, u2.MeanFrameLatencyMs,
		up.DroppedLoss+up.DroppedQueue, up.DroppedQueue, up.DroppedBurst)
}

func main() {
	// One declarative timeline, three §4.3 impairment families:
	//   0-6 s   clean
	//   6-9 s   congestion: rate ramps 4 -> 0.8 Mbps, holds, recovers
	//   12-15 s handover: +600 ms one-way delay step
	//   18-21 s burst loss: Gilbert-Elliott bad episodes
	sched := tp.NewSchedule().
		StepAt(6*tp.Second, tp.Impairment{RateBps: 4e6}).
		RampTo(7*tp.Second, 1*tp.Second, tp.Impairment{RateBps: 0.8e6}).
		RampTo(9*tp.Second, 1*tp.Second, tp.Impairment{RateBps: 4e6}).
		ClearAt(10500*tp.Millisecond).
		StepAt(12*tp.Second, tp.Impairment{ExtraDelayMs: 600}).
		ClearAt(15*tp.Second).
		StepAt(18*tp.Second, tp.Impairment{
			Burst: &tp.BurstParams{GoodToBad: 0.03, BadToGood: 0.2, LossBad: 0.95},
		}).
		ClearAt(21 * tp.Second)
	if err := sched.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("FaceTime spatial session, 24 s, impairment timeline on u1's uplink:")
	base := newSession(42)
	report("baseline (no schedule)", base)

	impaired := newSession(42)
	if err := sched.Bind(impaired.Scheduler(), impaired.UplinkShaper(0)); err != nil {
		log.Fatal(err)
	}
	report("scheduled impairments", impaired)

	// The same engine consumes external traces. This mahimahi-style trace
	// (one ms timestamp per line, one 1500 B delivery opportunity each —
	// the format VideoTransDemo's generate-weak-network-trace.py emits)
	// describes a link sagging from ~2.4 Mbps to ~0.6 Mbps.
	var trace strings.Builder
	for t := 0; t < 24000; {
		trace.WriteString(fmt.Sprintf("%d\n", t))
		if t < 12000 {
			t += 5 // 1500 B / 5 ms = 2.4 Mbps
		} else {
			t += 20 // 0.6 Mbps
		}
	}
	traced := newSession(42)
	wk, err := tp.ParseMahimahiTrace(strings.NewReader(trace.String()), tp.Second)
	if err != nil {
		log.Fatal(err)
	}
	if err := wk.Bind(traced.Scheduler(), traced.UplinkShaper(0)); err != nil {
		log.Fatal(err)
	}
	report("weak-network trace", traced)

	fmt.Println("\nsweep the same scenarios from the CLI:")
	fmt.Println("  go run ./cmd/vpfleet sweep handover   -axis delay_ms=0,100,250,500,1000")
	fmt.Println("  go run ./cmd/vpfleet sweep congestion -axis floor_mbps=2,1,0.5")
}
