// telemetry traces a burst-loss session and replays the trace. A two-party
// Zoom call (P2P 2D video) runs under a Gilbert-Elliott burst channel with
// hybrid recovery and gcc rate control — the same setup as
// examples/recovery — but this time with a Tracer and a Metrics registry
// attached, so every packet fate, rate decision, and repair becomes a typed
// JSONL event keyed by virtual time.
//
// The program then reads the trace back with SummarizeTrace and prints the
// reconstructed per-link / per-sender / per-stream report next to the
// session's own end-of-run stats: the event stream alone reproduces the
// UserStats counters exactly. Telemetry observes but never steers — run the
// session with cfg.Telemetry = nil and every row stays byte-identical.
//
// Run: go run ./examples/telemetry
// Files land in a temp dir; pass a directory argument to keep them:
//
//	go run ./examples/telemetry out/
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"

	tp "telepresence"
)

func main() {
	dir, keep := os.TempDir(), false
	if len(os.Args) > 1 {
		dir, keep = os.Args[1], true
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	tracePath := filepath.Join(dir, "burstloss.trace.jsonl")
	metricsPath := filepath.Join(dir, "burstloss.metrics.csv")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	metricsFile, err := os.Create(metricsPath)
	if err != nil {
		log.Fatal(err)
	}
	tw := bufio.NewWriter(traceFile)
	mw := bufio.NewWriter(metricsFile)

	// The recovery-example session, instrumented: Zoom P2P, 20 s, hybrid
	// repair and gcc rate control under moderate Gilbert-Elliott bursting.
	cfg := tp.DefaultSessionConfig(tp.Zoom, []tp.Participant{
		{ID: "u1", Loc: tp.Ashburn, Device: tp.VisionPro},
		{ID: "u2", Loc: tp.NewYork, Device: tp.VisionPro},
	})
	cfg.Duration = 20 * tp.Second
	cfg.Seed = 1
	cfg.VideoFPS = 15
	cfg.FreshnessLimit = 200 * tp.Millisecond
	cfg.Recovery = &tp.RecoveryConfig{Strategy: "hybrid"}
	cfg.RateControl = &tp.RateControlConfig{Controller: "gcc"}
	cfg.Telemetry = &tp.TelemetryConfig{
		Trace:   tp.NewTracer(tw),
		Metrics: tp.NewTraceMetrics(mw, tp.TraceMetricsCSV),
	}
	sess, err := tp.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sched := tp.BurstLossSchedule(tp.BurstParams{
		GoodToBad: 0.02, BadToGood: 0.25, LossBad: 0.9,
	}, 0, 0)
	if err := sched.Bind(sess.Scheduler(), sess.UplinkShaper(0)); err != nil {
		log.Fatal(err)
	}
	res := sess.Run()
	if err := cfg.Telemetry.Trace.Err(); err != nil {
		log.Fatal(err)
	}
	for _, w := range []*bufio.Writer{tw, mw} {
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	traceFile.Close()
	metricsFile.Close()

	// Replay: validate every line and reduce the stream to a report.
	f, err := os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sum, err := tp.SummarizeTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := sum.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The bridge: event counts vs the session's own aggregates.
	fmt.Println("\ntrace replay vs session stats (u2 = receiver):")
	_, _, decoded, undecodable, repaired, unrepaired := sum.UserFrameCounts(1)
	fmt.Printf("  %-22s %-8s %s\n", "", "trace", "session")
	fmt.Printf("  %-22s %-8d %d\n", "frames decoded", decoded, res.Users[1].FramesDecoded)
	fmt.Printf("  %-22s %-8d %d\n", "frames undecodable", undecodable, res.Users[1].FramesUndecodable)
	fmt.Printf("  %-22s %-8d %d\n", "packets repaired", repaired, res.Users[1].PacketsRepaired)
	fmt.Printf("  %-22s %-8d %d\n", "packets unrepaired", unrepaired, res.Users[1].PacketsUnrepaired)

	if keep {
		fmt.Printf("\nwrote %s and %s\n", tracePath, metricsPath)
		fmt.Println("inspect with: go run ./cmd/vpfleet trace summarize", tracePath)
	} else {
		os.Remove(tracePath)
		os.Remove(metricsPath)
	}
}
