// scalability reproduces Figure 7: how spatial-persona sessions scale from
// two to five Vision Pro users — rendered triangles, CPU/GPU frame time,
// and downlink throughput — and explains FaceTime's five-user cap.
package main

import (
	"fmt"
	"log"

	tp "telepresence"
)

func main() {
	opts := tp.Quick(21)
	opts.SessionDuration = 6 * tp.Second

	rows, err := tp.Fig7(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("users  triangles(mean)  CPU(ms)  GPU(ms)  GPU-p95  downlink(Mbps)")
	for _, r := range rows {
		fmt.Printf("%-6d %-16.0f %-8.2f %-8.2f %-8.2f %.2f\n",
			r.Users, r.TriMean, r.CPUMean, r.GPUMean, r.GPUP95, r.DownMbps)
	}
	last := rows[len(rows)-1]
	fmt.Printf("\nat five users the GPU's 95th percentile is %.1f ms against the %.1f ms\n",
		last.GPUP95, tp.RenderDeadlineMs)
	fmt.Println("budget for 90 FPS — the paper's explanation for FaceTime's five-persona cap.")

	// The paper's proposed fix (Implications 4): remote rendering.
	rr, err := tp.RemoteRenderAblation(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremote-rendering ablation (server composites personas into one video):")
	fmt.Println("users  fan-out(Mbps)  remote-render(Mbps)")
	for _, r := range rr {
		fmt.Printf("%-6d %-14.2f %.2f\n", r.Users, r.FanoutMbps, r.RemoteRenderMbps)
	}
}
