#!/usr/bin/env bash
# bench_fleet.sh — run the fleet benchmarks and emit BENCH_fleet.json, the
# perf-trajectory record future PRs compare against. Each run also appends
# one {commit, date, rows_per_sec, hot_sites} line to BENCH_history.jsonl,
# the append-only throughput timeline across commits (hot_sites is the
# top-3 scheduling-site ranking from a short profiled sweep).
#
# Usage: scripts/bench_fleet.sh [output.json]
#
# Captures ns/op, B/op, allocs/op and rows for the sequential fleet suite
# and the repetition-heavy keypoints benchmark. Run on an otherwise idle
# machine; results are wall-clock sensitive.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_fleet.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Host context: rows/sec numbers are only comparable within one host, so
# every record carries the CPU budget it ran under. cpus is the online
# processor count; gomaxprocs is the Go scheduler's budget (the benchmark
# suffix, e.g. BenchmarkFoo-8, also reflects it); bench_workers is the
# worker count the sequential suite benchmarks pin (1 — they measure
# per-row cost, not parallel speedup).
cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)"
gomaxprocs="${GOMAXPROCS:-$cpus}"
bench_workers=1

# Time the determinism lint over the whole module. vplint type-checks every
# package from source, so its wall time tracks repo growth; recording it in
# the history line keeps the lint budget (seconds, not minutes) honest.
t0="$(date +%s%N)"
go run ./cmd/vplint ./... >&2
t1="$(date +%s%N)"
vplint_s="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", (b - a) / 1e9 }')"
echo "vplint ./... took ${vplint_s}s" >&2

go test -run NONE \
  -bench 'BenchmarkFleetSuiteSequential$|BenchmarkFleetSuiteSequentialCheckpoint$|BenchmarkFleetKeypoints8RepsSequential$' \
  -benchtime=1x -benchmem -count=1 . | tee "$raw" >&2

# Profile a short sweep and record its top-3 hot scheduling sites: the
# history line then shows where virtual-time budget goes, commit over
# commit, next to how fast the fleet chews through rows. The counters are
# deterministic (seed-derived), so hot-site drift in the timeline means a
# real behavior change, not measurement noise.
profdir="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$profdir"' EXIT
go run ./cmd/vpfleet sweep burstloss -axis loss_bad=0.3,0.6 \
  -vprof "$profdir" -out "$profdir/out" >&2
hot_sites="$(go run ./cmd/vpfleet prof top -n 3 "$profdir/merged.vprof.jsonl" \
  | awk 'NR > 2 { printf "%s{\"site\":\"%s\",\"events\":%s}", sep, $1, $2; sep = "," }')"
echo "hot sites: $hot_sites" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v cpus="$cpus" -v gomaxprocs="$gomaxprocs" -v bench_workers="$bench_workers" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; rows = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "rows")      rows = $i
    }
    printf "%s{\"benchmark\":\"%s\",\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s", sep, name, ns, bytes, allocs
    if (rows != "") {
        printf ",\"rows\":%s,\"rows_per_sec\":%.3f", rows, rows / (ns / 1e9)
    }
    printf "}"
    sep = ",\n  "
    nsByName[name] = ns
}
BEGIN {
    printf "{\n \"generated\":\"" date "\",\n \"commit\":\"" commit "\",\n"
    printf " \"cpus\":" cpus ",\n \"gomaxprocs\":" gomaxprocs ",\n \"bench_workers\":" bench_workers ",\n"
    printf " \"results\":[\n  "
}
END   {
    printf "\n ]"
    # Checkpointing tax: journaled sequential suite vs plain, as a percent.
    # The fault-tolerance budget (ISSUE PR 7) is <5%.
    base = nsByName["BenchmarkFleetSuiteSequential"]
    ck = nsByName["BenchmarkFleetSuiteSequentialCheckpoint"]
    if (base > 0 && ck != "") {
        printf ",\n \"checkpoint_overhead_pct\":%.2f", (ck - base) / base * 100
    }
    printf "\n}\n"
}
' "$raw" > "$out"

echo "wrote $out" >&2

# Append the suite's rows/sec to the throughput timeline. One line per run,
# newest last; plot with e.g. jq -r '[.date,.rows_per_sec]|@tsv'.
history="BENCH_history.jsonl"
rps="$(awk '/"benchmark":"BenchmarkFleetSuiteSequential"/ {
    if (match($0, /"rows_per_sec":[0-9.]+/))
        print substr($0, RSTART + 15, RLENGTH - 15)
}' "$out")"
if [ -n "$rps" ]; then
  printf '{"commit":"%s","date":"%s","rows_per_sec":%s,"vplint_seconds":%s,"cpus":%s,"gomaxprocs":%s,"bench_workers":%s,"hot_sites":[%s]}\n' \
    "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$rps" "$vplint_s" \
    "$cpus" "$gomaxprocs" "$bench_workers" "$hot_sites" >> "$history"
  echo "appended rows/sec to $history" >&2
else
  echo "warning: no rows/sec in $out; $history not updated" >&2
fi
