// Benchmarks regenerating every figure and headline number of the paper's
// evaluation. Each benchmark runs the corresponding experiment and reports
// the measured quantities as custom metrics next to the paper's values
// (encoded in the metric name where useful). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock time per op is the cost of simulating the experiment,
// not a claim about the measured system; the custom metrics carry the
// reproduction results.
package telepresence_test

import (
	"testing"

	tp "telepresence"
)

func benchOpts(seed int64) tp.Options {
	o := tp.Quick(seed)
	o.SessionDuration = 4 * tp.Second
	o.Reps = 1
	return o
}

// BenchmarkFig4ServerRTT regenerates Figure 4: RTT CDFs between the nine US
// vantage points and each provider's servers. Paper: worst case >100 ms;
// mid-US servers keep everyone <70 ms; 20% of TX-F RTTs <20 ms vs 38% for
// VA-F.
func BenchmarkFig4ServerRTT(b *testing.B) {
	var rows []tp.Fig4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.Fig4(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	byLabel := map[string]tp.Fig4Row{}
	worst := 0.0
	for _, r := range rows {
		byLabel[r.Label] = r
		if m := r.Sample.Max(); m > worst {
			worst = m
		}
	}
	b.ReportMetric(worst, "worstRTTms_paper>100")
	b.ReportMetric(byLabel["TX-F"].Sample.FractionBelow(20)*100, "%TX-F<20ms_paper20")
	b.ReportMetric(byLabel["VA-F"].Sample.FractionBelow(20)*100, "%VA-F<20ms_paper38")
	b.ReportMetric(byLabel["CA-W"].Sample.Max(), "CA-W_maxms_paper>100")
}

// BenchmarkProtocolMatrix regenerates the §4.1 protocol findings: QUIC only
// for all-Vision-Pro FaceTime, RTP otherwise; P2P rules per app.
func BenchmarkProtocolMatrix(b *testing.B) {
	var cases []tp.ProtocolCase
	for i := 0; i < b.N; i++ {
		cases = tp.ProtocolMatrix()
	}
	quicCount, p2p := 0, 0
	for _, c := range cases {
		if c.Transport == tp.TransportQUIC {
			quicCount++
		}
		if c.P2P {
			p2p++
		}
	}
	b.ReportMetric(float64(quicCount), "QUICcases_paper1")
	b.ReportMetric(float64(p2p), "P2Pcases_paper4")
}

// BenchmarkFig5Throughput regenerates Figure 5: two-user throughput per
// app. Paper means: F 0.67, F* ~2, Z ~1.5, W >4, T ~2.7 Mbps.
func BenchmarkFig5Throughput(b *testing.B) {
	var rows []tp.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.Fig5(benchOpts(2))
		if err != nil {
			b.Fatal(err)
		}
	}
	paper := map[string]string{"F": "0.67", "F*": "2.0", "Z": "1.5", "W": "4.3", "T": "2.7"}
	for _, r := range rows {
		b.ReportMetric(r.Box.Mean, r.Label+"_Mbps_paper"+paper[r.Label])
	}
}

// BenchmarkMeshStreaming regenerates the §4.3 direct-3D-streaming estimate.
// Paper: 108.4±16.7 Mbps for ten 70-90K-triangle heads at 90 FPS.
func BenchmarkMeshStreaming(b *testing.B) {
	var res *tp.MeshStreamingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = tp.MeshStreaming(benchOpts(3))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MbpsSample.Mean(), "Mbps_paper108.4")
	b.ReportMetric(res.MbpsSample.Std(), "MbpsStd_paper16.7")
}

// BenchmarkKeypointStreaming regenerates the §4.3 semantic estimate. Paper:
// 74 keypoints, LZMA, 90 FPS => 0.64±0.02 Mbps.
func BenchmarkKeypointStreaming(b *testing.B) {
	var res *tp.KeypointStreamingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = tp.KeypointStreaming(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MbpsSample.Mean(), "Mbps_paper0.64")
	b.ReportMetric(float64(res.Keypoints), "keypoints_paper74")
}

// BenchmarkDisplayLatency regenerates the §4.3 viewport-flip experiment.
// Paper: the persona/real-world display gap stays <16 ms for injected
// delays of 0-1000 ms, ruling out pre-rendered video.
func BenchmarkDisplayLatency(b *testing.B) {
	var rows []tp.DisplayLatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.DisplayLatency(benchOpts(5), []float64{0, 250, 500, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	maxSemantic, maxPrerendered := 0.0, 0.0
	for _, r := range rows {
		if r.SemanticDiffMs > maxSemantic {
			maxSemantic = r.SemanticDiffMs
		}
		if r.PrerenderedDiffMs > maxPrerendered {
			maxPrerendered = r.PrerenderedDiffMs
		}
	}
	b.ReportMetric(maxSemantic, "semanticGapMs_paper<16")
	b.ReportMetric(maxPrerendered, "prerenderedGapMs_growsWithRTT")
}

// BenchmarkRateAdaptation regenerates the §4.3 bandwidth-cap experiment.
// Paper: at a 0.7 Mbps uplink cap the spatial persona becomes unavailable.
func BenchmarkRateAdaptation(b *testing.B) {
	var rows []tp.RateAdaptationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.RateAdaptation(benchOpts(6), []float64{0, 0.7})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].UnavailableFrac*100, "%unavail_uncapped_paper0")
	b.ReportMetric(rows[1].UnavailableFrac*100, "%unavail_0.7Mbps_paper~100")
}

// BenchmarkFig6Visibility regenerates Figure 6: triangles and GPU time per
// visibility optimization. Paper: BL 78,030/6.55 ms; V 36/2.68 ms (-59%);
// F 21,036/3.97 ms; D 45,036/3.91 ms; bandwidth unchanged.
func BenchmarkFig6Visibility(b *testing.B) {
	var rows []tp.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.Fig6(benchOpts(7))
		if err != nil {
			b.Fatal(err)
		}
	}
	paperGPU := map[string]string{"BL": "6.55", "V": "2.68", "F": "3.97", "D": "3.91"}
	for _, r := range rows {
		b.ReportMetric(r.GPUMs, r.Mode+"_GPUms_paper"+paperGPU[r.Mode])
		b.ReportMetric(float64(r.Triangles), r.Mode+"_tris")
	}
}

// BenchmarkFig7Scalability regenerates Figure 7: triangles, CPU/GPU time
// and downlink throughput for 2-5 users. Paper: GPU 5.65->7.62 ms
// (95th pct >9 ms at five users), CPU 5.67->6.76 ms, downlink ~linear.
func BenchmarkFig7Scalability(b *testing.B) {
	var rows []tp.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.Fig7(benchOpts(8))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		u := string(rune('0' + r.Users))
		b.ReportMetric(r.GPUMean, u+"u_GPUms")
		b.ReportMetric(r.CPUMean, u+"u_CPUms")
		b.ReportMetric(r.DownMbps, u+"u_downMbps")
	}
	b.ReportMetric(rows[len(rows)-1].GPUP95, "5u_GPUp95_paper>9")
}

// BenchmarkRemoteRenderingAblation quantifies Implications 4: remote
// rendering decouples downlink bandwidth from user count.
func BenchmarkRemoteRenderingAblation(b *testing.B) {
	var rows []tp.RemoteRenderRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.RemoteRenderAblation(benchOpts(9))
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(last.FanoutMbps/first.FanoutMbps, "fanoutGrowth_paper~4x")
	b.ReportMetric(last.RemoteRenderMbps/first.RemoteRenderMbps, "remoteGrowth_want~1x")
}

// BenchmarkAnycastAudit regenerates the §4.1 anycast check: every provider
// server is unicast.
func BenchmarkAnycastAudit(b *testing.B) {
	var verdicts []tp.AnycastVerdict
	for i := 0; i < b.N; i++ {
		var err error
		verdicts, err = tp.AnycastAudit(benchOpts(10))
		if err != nil {
			b.Fatal(err)
		}
	}
	anycast := 0
	for _, v := range verdicts {
		if v.Anycast {
			anycast++
		}
	}
	b.ReportMetric(float64(anycast), "anycastServers_paper0")
}

// BenchmarkMultiServerAblation quantifies Implications 1: geo-distributed
// serving versus the measured initiator-nearest policy.
func BenchmarkMultiServerAblation(b *testing.B) {
	var rows []tp.MultiServerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.MultiServerAblation(benchOpts(11))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MaxOneWayMs, "initiatorMaxMs")
	b.ReportMetric(rows[2].MaxOneWayMs, "geoDistMaxMs_lower")
}

// BenchmarkViewportDelivery quantifies Implications 3: bandwidth saved by
// visibility-aware delivery.
func BenchmarkViewportDelivery(b *testing.B) {
	var row tp.ViewportDeliveryRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = tp.ViewportDeliveryAblation(benchOpts(12))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.SavingsFrac*100, "%saved")
	b.ReportMetric(row.OutOfViewFrac*100, "%outOfView")
}

// BenchmarkPassiveQoE validates the §5 direction: frame rate inferred from
// encrypted packet timing (90 FPS spatial vs 30 FPS video).
func BenchmarkPassiveQoE(b *testing.B) {
	var rows []tp.QoESweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tp.PassiveQoESweep(benchOpts(13))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.InferredFPS, r.App.String()+"_inferredFPS")
	}
}

// benchFleet runs the full registered suite at the given worker count and
// reports rows/op so sequential and parallel runs can be compared:
//
//	go test -bench=BenchmarkFleetSuite -benchtime=1x
//
// The suite is embarrassingly parallel across (experiment, rep) units, so
// eight workers should finish the repetition-heavy experiments well over
// 2x faster than one.
func benchFleet(b *testing.B, workers int) {
	var rows int
	for i := 0; i < b.N; i++ {
		results, err := tp.FleetRunAll(benchOpts(20), tp.FleetConfig{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, r := range results {
			rows += len(r.Rows)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFleetSuiteSequential(b *testing.B) { benchFleet(b, 1) }
func BenchmarkFleetSuiteParallel8(b *testing.B)  { benchFleet(b, 8) }

// BenchmarkFleetSuiteSequentialCheckpoint measures the checkpointing tax:
// the same sequential suite with every completed rep journaled (dual-
// encoded entry + atomic temp-and-rename write per unit). The fault-
// tolerance budget is <5% over BenchmarkFleetSuiteSequential;
// scripts/bench_fleet.sh computes the overhead into BENCH_fleet.json.
func BenchmarkFleetSuiteSequentialCheckpoint(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		journal, err := tp.OpenFleetJournal(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		results, err := tp.FleetRunAll(benchOpts(20), tp.FleetConfig{Workers: 1, Checkpoint: journal})
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, r := range results {
			rows += len(r.Rows)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFleetKeypoints8Reps isolates a repetition-heavy experiment:
// eight independent keypoint-streaming reps on one worker versus eight.
func benchFleetKeypoints(b *testing.B, workers int) {
	exps, err := tp.SelectExperiments("keypoints")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts(21)
	opts.Reps = 8
	for i := 0; i < b.N; i++ {
		if _, err := tp.FleetRun(exps, opts, tp.FleetConfig{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetKeypoints8RepsSequential(b *testing.B) { benchFleetKeypoints(b, 1) }
func BenchmarkFleetKeypoints8RepsParallel8(b *testing.B)  { benchFleetKeypoints(b, 8) }
