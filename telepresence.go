// Package telepresence is the public API of the immersive-telepresence
// simulation framework reproducing "A First Look at Immersive Telepresence
// on Apple Vision Pro" (IMC 2024).
//
// The package exposes three layers:
//
//   - Sessions: build and run simulated telepresence calls on any of the
//     four modeled applications (FaceTime, Zoom, Webex, Teams), with
//     tc-style impairments, packet captures and per-user statistics.
//   - Experiments: one runner per figure/analysis in the paper (Fig4,
//     Fig5, Fig6, Fig7, MeshStreaming, KeypointStreaming, DisplayLatency,
//     RateAdaptation, AnycastAudit, ProtocolMatrix, RemoteRenderAblation).
//   - Fleet: a registry of every experiment plus a deterministic parallel
//     scheduler (FleetRun) that shards repetitions across a worker pool
//     and streams merged rows to pluggable sinks (JSONL, CSV, in-memory).
//   - Building blocks, re-exported for direct use: the semantic codec, the
//     mesh codec, the renderer cost model, and the geography/RTT model.
//
// Everything is deterministic given a seed; nothing touches the wall clock
// or the real network.
package telepresence

import (
	"telepresence/internal/core"
	"telepresence/internal/fleet"
	"telepresence/internal/geo"
	"telepresence/internal/ratecontrol"
	"telepresence/internal/recovery"
	"telepresence/internal/render"
	"telepresence/internal/scenario"
	"telepresence/internal/semantic"
	"telepresence/internal/simtime"
	"telepresence/internal/stats"
	"telepresence/internal/telemetry"
	"telepresence/internal/vca"
	"telepresence/internal/vprof"
)

// Version identifies the release of this framework.
const Version = "1.0.0"

// Application and device models (§3.1, Figure 3).
type (
	// App identifies one of the four measured videoconferencing apps.
	App = vca.App
	// Device is a participant's hardware.
	Device = vca.Device
	// Participant is one session member.
	Participant = vca.Participant
	// Plan is a session's §4.1 connectivity/media decision.
	Plan = vca.Plan
	// MediaKind distinguishes spatial personas from 2D video.
	MediaKind = vca.MediaKind
	// Transport is QUIC or RTP.
	Transport = vca.Transport
)

// Applications and devices.
const (
	FaceTime = vca.FaceTime
	Zoom     = vca.Zoom
	Webex    = vca.Webex
	Teams    = vca.Teams

	VisionPro = vca.VisionPro
	MacBook   = vca.MacBook
	IPad      = vca.IPad
	IPhone    = vca.IPhone

	MediaSpatialPersona = vca.MediaSpatialPersona
	Media2DVideo        = vca.Media2DVideo
	TransportQUIC       = vca.TransportQUIC
	TransportRTP        = vca.TransportRTP
)

// MaxSpatialUsers is FaceTime's spatial-persona cap (five, §4.5).
const MaxSpatialUsers = vca.MaxSpatialUsers

// Sessions.
type (
	// Session is a fully wired simulated call.
	Session = vca.Session
	// SessionConfig parameterizes a session.
	SessionConfig = vca.SessionConfig
	// SessionResults is a session's measurement outcome.
	SessionResults = vca.Results
	// UserStats is one participant's measurements.
	UserStats = vca.UserStats
	// RateControlConfig closes the congestion-control feedback loop on a
	// session (SessionConfig.RateControl); nil keeps the paper's
	// open-loop behavior.
	RateControlConfig = vca.RateControlConfig
	// RateController is the sender-side congestion-control contract.
	RateController = ratecontrol.Controller
	// RateControllerConfig parameterizes a standalone controller.
	RateControllerConfig = ratecontrol.Config
)

// Rate-control entry points (internal/ratecontrol).
var (
	// RateControllerKinds lists the controller kinds in the ccrate/ccramp
	// grid order: "fixed" (open loop), "loss", "gcc".
	RateControllerKinds = ratecontrol.Kinds
	// NewRateController builds a controller by kind.
	NewRateController = ratecontrol.New
)

// Loss recovery (internal/recovery): NACK/RTX, XOR-parity FEC and adaptive
// hybrid redundancy on the RTP media path (SessionConfig.Recovery).
type (
	// RecoveryConfig wires a loss-recovery strategy into a session.
	RecoveryConfig = vca.RecoveryConfig
	// RecoverySenderStats counts parity, retransmissions and cache work.
	RecoverySenderStats = recovery.SenderStats
	// RecoveryReceiverStats counts gaps, repairs and repair delays.
	RecoveryReceiverStats = recovery.ReceiverStats
)

// RecoveryKinds lists the strategy kinds in the recovery/recramp grid
// order: "none", "nack", "fec", "hybrid".
var RecoveryKinds = recovery.Kinds

// DefaultFrameTimeout is the depacketizer's default incomplete-frame
// timeout, configurable per session via SessionConfig.FrameTimeout.
const DefaultFrameTimeout = vca.DefaultFrameTimeout

// Telemetry (internal/telemetry): virtual-time session tracing and metrics
// timeseries (SessionConfig.Telemetry). Nil is provably inert; enabled
// telemetry observes but never steers, so rows stay byte-identical.
type (
	// TelemetryConfig attaches a tracer and/or metrics registry to a
	// session.
	TelemetryConfig = vca.TelemetryConfig
	// Tracer serializes typed session events as deterministic JSONL.
	Tracer = telemetry.Tracer
	// TraceMetrics is a registry of gauges sampled on a virtual-time tick.
	TraceMetrics = telemetry.Metrics
	// TraceMetricsFormat selects the metrics export encoding.
	TraceMetricsFormat = telemetry.Format
	// TraceSummary is the per-stream reconstruction of one trace file.
	TraceSummary = telemetry.Summary
)

// Metrics export encodings.
const (
	TraceMetricsCSV   = telemetry.FormatCSV
	TraceMetricsJSONL = telemetry.FormatJSONL
)

// Telemetry entry points.
var (
	// NewTracer wraps w in an event tracer.
	NewTracer = telemetry.NewTracer
	// NewTraceMetrics wraps w in a sampled-metrics registry.
	NewTraceMetrics = telemetry.NewMetrics
	// SummarizeTrace validates and aggregates one JSONL trace stream.
	SummarizeTrace = telemetry.Summarize
	// ValidateTraceLine checks one trace line against the event schema.
	ValidateTraceLine = telemetry.ValidateLine
	// TraceSchemaDoc renders the event schema as a sorted listing.
	TraceSchemaDoc = telemetry.SchemaDoc
)

// Virtual-time profiling (internal/vprof): per-site scheduler attribution
// (SessionConfig.Prof, Options.ProfDir). A nil profiler is provably inert;
// an attached one observes but never steers, so rows stay byte-identical.
// Deterministic counters export as byte-stable JSONL; pprof exports
// additionally carry wall-CPU attribution and open with `go tool pprof`.
type (
	// VProfiler attributes scheduler events to named sites
	// (SessionConfig.Prof).
	VProfiler = vprof.Profiler
	// VProfReport is a profile snapshot: per-site counters over a virtual
	// duration.
	VProfReport = vprof.Report
	// VProfSiteReport is one scheduling site's aggregated profile.
	VProfSiteReport = vprof.SiteReport
	// FleetHotSite is one entry of a manifest's hot_sites ranking.
	FleetHotSite = fleet.HotSite
)

// Virtual-time profiling entry points.
var (
	// NewVProfiler returns an idle profiler; attach via SessionConfig.Prof.
	NewVProfiler = vprof.New
	// ParseVProfReport reads a deterministic JSONL site report.
	ParseVProfReport = vprof.ParseReport
	// ParseVProfPprof reads a (gzipped or raw) pprof profile back into a
	// report.
	ParseVProfPprof = vprof.ParsePprof
	// MergeVProfReports sums reports site-by-site, keyed on site name.
	MergeVProfReports = vprof.Merge
	// FleetMergeProfiles merges a run's per-unit profiles into run-level
	// artifacts and returns the manifest hot-site ranking.
	FleetMergeProfiles = fleet.MergeProfiles
)

// Profile artifact names: per-cell suffixes and the run-level merges.
const (
	ProfJSONLSuffix      = core.ProfJSONLSuffix
	ProfPprofSuffix      = core.ProfPprofSuffix
	FleetMergedProfJSONL = fleet.MergedProfJSONL
	FleetMergedProfPprof = fleet.MergedProfPprof
)

// NewSession plans (per the paper's §4.1 matrix) and wires a session.
func NewSession(cfg SessionConfig) (*Session, error) { return vca.NewSession(cfg) }

// DefaultSessionConfig returns a ready-to-run configuration.
func DefaultSessionConfig(app App, parts []Participant) SessionConfig {
	return vca.DefaultSessionConfig(app, parts)
}

// PlanSession evaluates the §4.1 decision matrix without running anything.
func PlanSession(app App, parts []Participant, initiator int) (Plan, error) {
	return vca.PlanSession(app, parts, initiator)
}

// Geography (§4.1).
type Location = geo.Location

// Vantage points and server locations.
var (
	VantagePoints = geo.VantagePoints
	Seattle       = geo.Seattle
	SanFrancisco  = geo.SanFrancisco
	LosAngeles    = geo.LosAngeles
	Denver        = geo.Denver
	Chicago       = geo.Chicago
	Austin        = geo.Austin
	NewYork       = geo.NewYork
	Ashburn       = geo.Ashburn
	Miami         = geo.Miami
)

// Experiments: options and runners.
type (
	// Options scales experiments (Quick for CI, Full for paper scale).
	Options = core.Options
	// Experiment row types, one per figure.
	Fig4Row                 = core.Fig4Row
	Fig5Row                 = core.Fig5Row
	Fig6Row                 = core.Fig6Row
	Fig7Row                 = core.Fig7Row
	ProtocolCase            = core.ProtocolCase
	DisplayLatencyRow       = core.DisplayLatencyRow
	RateAdaptationRow       = core.RateAdaptationRow
	RemoteRenderRow         = core.RemoteRenderRow
	MeshStreamingResult     = core.MeshStreamingResult
	KeypointStreamingResult = core.KeypointStreamingResult
	AnycastVerdict          = vca.AnycastVerdict
	MultiServerRow          = core.MultiServerRow
	ServerPolicy            = core.ServerPolicy
	ViewportDeliveryRow     = core.ViewportDeliveryRow
	QoESweepRow             = core.QoESweepRow
	// Scenario-experiment rows (time-varying impairment schedules).
	HandoverRow   = core.HandoverRow
	BurstLossRow  = core.BurstLossRow
	CongestionRow = core.CongestionRow
	// Closed-loop congestion-control rows (internal/ratecontrol).
	CCRateRow = core.CCRateRow
	CCRampRow = core.CCRampRow
	// Loss-recovery rows (internal/recovery).
	RecoveryRow = core.RecoveryRow
	RecRampRow  = core.RecRampRow
)

// Server policies for the Implications-1 ablation.
const (
	PolicyInitiator      = core.PolicyInitiator
	PolicyCentral        = core.PolicyCentral
	PolicyGeoDistributed = core.PolicyGeoDistributed
)

// Default sweeps used by the registry's latency, rate and scenario
// experiments.
var (
	DefaultInjectedDelaysMs     = core.DefaultInjectedDelaysMs
	DefaultRateCaps             = core.DefaultRateCaps
	DefaultHandoverDelaysMs     = core.DefaultHandoverDelaysMs
	DefaultCongestionFloorsMbps = core.DefaultCongestionFloorsMbps
	DefaultCCRateCaps           = core.DefaultCCRateCaps
	DefaultCCRateControllers    = core.DefaultCCRateControllers
	DefaultRecoveryStrategies   = core.DefaultRecoveryStrategies
	DefaultRecRampFloorsMbps    = core.DefaultRecRampFloorsMbps
)

// Quick returns CI-scale experiment options.
func Quick(seed int64) Options { return core.Quick(seed) }

// Full returns paper-scale experiment options (120 s sessions, 5 reps).
func Full(seed int64) Options { return core.Full(seed) }

// Experiment runners; see DESIGN.md for the per-experiment index.
var (
	Fig4                 = core.Fig4
	Fig5                 = core.Fig5
	Fig6                 = core.Fig6
	Fig7                 = core.Fig7
	ProtocolMatrix       = core.ProtocolMatrix
	MeshStreaming        = core.MeshStreaming
	KeypointStreaming    = core.KeypointStreaming
	DisplayLatency       = core.DisplayLatency
	RateAdaptation       = core.RateAdaptation
	AnycastAudit         = core.AnycastAudit
	RemoteRenderAblation = core.RemoteRenderAblation
	// Extensions implementing the paper's Implications proposals.
	MultiServerAblation      = core.MultiServerAblation
	ViewportDeliveryAblation = core.ViewportDeliveryAblation
	PassiveQoESweep          = core.PassiveQoESweep
)

// Fleet orchestration: the experiment registry and the deterministic
// parallel scheduler. See DESIGN.md for the architecture.
type (
	// Experiment is one registry entry: a named, rep-shardable runner.
	Experiment = core.Experiment
	// RepRunner runs one independent repetition of an experiment.
	RepRunner = core.RepRunner
	// ExperimentRow is one emitted row (a concrete row struct).
	ExperimentRow = core.Row
	// FleetConfig bounds the scheduler's worker pool.
	FleetConfig = fleet.Config
	// FleetResult is one experiment's merged outcome.
	FleetResult = fleet.ExperimentResult
	// FleetManifest is a fleet run's provenance record.
	FleetManifest = fleet.Manifest
	// Sink consumes one experiment's merged rows.
	Sink = fleet.Sink
	// EntrySink is a sink that can replay checkpointed journal entries
	// (required for resuming; the JSONL and CSV sinks implement it).
	EntrySink = fleet.EntrySink
	// MemorySink collects rows in memory (for tests and pipelines).
	MemorySink = fleet.MemorySink

	// Fault tolerance (see DESIGN.md "Fault tolerance"):
	// RetryPolicy re-runs failing or hung units with backoff and a
	// per-attempt watchdog (FleetConfig.Retry).
	RetryPolicy = fleet.RetryPolicy
	// FaultPlan is the deterministic chaos harness (FleetConfig.Chaos).
	FaultPlan = fleet.FaultPlan
	// FleetJournal is a per-run checkpoint directory of completed units.
	FleetJournal = fleet.Journal
	// FleetJournalEntry is one checkpointed unit's pre-encoded rows.
	FleetJournalEntry = fleet.JournalEntry
	// UnitFailure is one failed rep/cell in a manifest's failures section.
	UnitFailure = fleet.UnitFailure

	// Live observability (see DESIGN.md "Live observability"):
	// FleetMonitor receives unit-lifecycle events from a running fleet
	// (FleetConfig.Monitor). Monitors observe but never steer; a nil
	// monitor is provably inert. internal/fleetobs builds the HTTP and
	// terminal views on this.
	FleetMonitor = fleet.Monitor
	// FleetMonitorEvent is one engine notification.
	FleetMonitorEvent = fleet.MonitorEvent
	// FleetEventKind enumerates the notification kinds.
	FleetEventKind = fleet.EventKind

	// Per-unit fleet row types (aggregated runners emit these per rep).
	MeshHeadRow = core.MeshHeadRow
	KeypointRow = core.KeypointRow
)

// Fleet monitor event kinds (FleetMonitorEvent.Kind).
const (
	FleetEventRunStarted     = fleet.EventRunStarted
	FleetEventUnitDispatched = fleet.EventUnitDispatched
	FleetEventAttemptStarted = fleet.EventAttemptStarted
	FleetEventUnitRetried    = fleet.EventUnitRetried
	FleetEventUnitPanicked   = fleet.EventUnitPanicked
	FleetEventUnitTimedOut   = fleet.EventUnitTimedOut
	FleetEventJournalHit     = fleet.EventJournalHit
	FleetEventUnitDone       = fleet.EventUnitDone
	FleetEventRowsEmitted    = fleet.EventRowsEmitted
	FleetEventWindow         = fleet.EventWindow
	FleetEventInterrupted    = fleet.EventInterrupted
	FleetEventRunDone        = fleet.EventRunDone
)

// Scenario engine: declarative timelines of network impairment (steps,
// ramps, Gilbert-Elliott burst loss) that drive a session's shapers from
// virtual-time callbacks, plus trace import. Bind a schedule with
// Schedule.Bind(session.Scheduler(), session.UplinkShaper(i)) before Run.
type (
	// Schedule is a declarative impairment timeline.
	Schedule = scenario.Schedule
	// Impairment is one target shaper state on a timeline.
	Impairment = scenario.Impairment
	// BurstParams parameterize Gilbert-Elliott burst loss declaratively.
	BurstParams = scenario.BurstParams
	// ScheduleAction is one flattened shaper write of a schedule.
	ScheduleAction = scenario.Action
)

// Scenario construction and trace import.
var (
	// NewSchedule returns an empty impairment timeline.
	NewSchedule = scenario.New
	// Preset §4.3-shaped timelines.
	DelayStepSchedule     = scenario.DelayStep
	BandwidthRampSchedule = scenario.BandwidthRamp
	BurstLossSchedule     = scenario.BurstLoss
	// ParseTraceCSV imports a "time_s,delay_ms,rate_kbps,loss" timeline.
	ParseTraceCSV = scenario.ParseCSV
	// ParseMahimahiTrace imports a mahimahi/VideoTransDemo-style
	// packet-opportunity trace as a piecewise rate schedule.
	ParseMahimahiTrace = scenario.ParseMahimahi
)

// Parameter sweeps: cartesian grids over a sweep target's schedule
// parameters, sharded like experiment reps (see FleetRunSweep).
type (
	// SweepTarget is a parameterized experiment registered for sweeps.
	SweepTarget = core.SweepTarget
	// SweepParam is one recognized target parameter with its default.
	SweepParam = core.SweepParam
	// CellRunner executes one sweep cell.
	CellRunner = core.CellRunner
	// SweepAxis is one swept parameter with its grid values.
	SweepAxis = fleet.Axis
	// SweepSpec is a cartesian grid over one sweep target.
	SweepSpec = fleet.SweepSpec
	// SweepCell is one enumerated grid point.
	SweepCell = fleet.SweepCell
	// SweepCellResult is one cell's merged outcome.
	SweepCellResult = fleet.SweepCellResult
	// FleetSweepManifest is a sweep run's provenance record.
	FleetSweepManifest = fleet.SweepManifest
)

// Fleet entry points.
var (
	// Experiments lists every registered experiment, sorted by name.
	Experiments = core.Experiments
	// LookupExperiment finds a registered experiment by name.
	LookupExperiment = core.Lookup
	// RegisterExperiment adds a runner to the registry (for downstream
	// extensions; names must be unique).
	RegisterExperiment = core.Register
	// SelectExperiments resolves names ("all" = everything).
	SelectExperiments = fleet.Select
	// FleetRun shards the experiments' reps across a worker pool;
	// merged output is byte-identical for any worker count.
	FleetRun = fleet.Run
	// FleetRunStream streams rows per completed rep (bounded memory) and
	// supports checkpoint resume.
	FleetRunStream = fleet.RunStream
	// FleetRunAll runs the whole registered suite.
	FleetRunAll = fleet.RunAll
	// FleetWrite streams results through per-experiment sinks.
	FleetWrite = fleet.WriteResults
	// OpenFleetJournal opens (creating if needed) a checkpoint directory.
	OpenFleetJournal = fleet.OpenJournal
	// ErrFleetInterrupted marks a gracefully drained (resumable) run;
	// test with errors.Is.
	ErrFleetInterrupted = fleet.ErrInterrupted
	// ParseFaultPlan parses a vpfleet -chaos spec into a FaultPlan.
	ParseFaultPlan = fleet.ParseFaultPlan
	// NewFleetManifest builds the provenance record for a finished run.
	NewFleetManifest = fleet.NewManifest
	// Sink constructors.
	NewJSONLSink  = fleet.NewJSONLSink
	NewCSVSink    = fleet.NewCSVSink
	NewMemorySink = fleet.NewMemorySink

	// Sweep entry points: the sweep-target registry and the grid runner.
	SweepTargets        = core.SweepTargets
	LookupSweepTarget   = core.LookupSweep
	RegisterSweepTarget = core.RegisterSweep
	// SweepCellOptions derives a cell's options from the run seed and the
	// cell's parameter values (for custom CellRunner implementations).
	SweepCellOptions = core.SweepCellOptions
	// FleetRunSweep shards a sweep grid's cells across a worker pool;
	// merged output is byte-identical for any worker count.
	FleetRunSweep = fleet.RunSweep
	// FleetRunSweepStream streams rows per completed cell (bounded
	// memory) and supports checkpoint resume.
	FleetRunSweepStream = fleet.RunSweepStream
	// FleetWriteSweep streams sweep results through one sink in grid order.
	FleetWriteSweep = fleet.WriteSweep
	// NewFleetSweepManifest builds the provenance record of a sweep run.
	NewFleetSweepManifest = fleet.NewSweepManifest
)

// Statistics helpers (re-exported for consumers of experiment rows).
type (
	// Sample is an accumulating set of observations.
	Sample = stats.Sample
	// Box is the five-number summary used by the paper's plots.
	Box = stats.Box
)

// Rendering model (§4.4, §4.5).
type (
	// CostModel holds the calibrated GPU/CPU constants.
	CostModel = render.CostModel
	// Optimizations selects visibility-aware optimizations.
	Optimizations = render.Optimizations
)

// Rendering helpers.
var (
	DefaultCostModel      = render.DefaultCostModel
	FaceTimeOptimizations = render.FaceTimeOptimizations
)

// RenderDeadlineMs is the 90 FPS frame budget (~11.1 ms, §3.2).
const RenderDeadlineMs = render.DeadlineMs

// Semantic codec modes (§4.3).
const (
	// SemanticFloat32 is the paper-faithful raw-float encoding.
	SemanticFloat32 = semantic.ModeFloat32
	// SemanticQuantized is the quantized-delta ablation encoding.
	SemanticQuantized = semantic.ModeQuantized
)

// Durations, re-exported so callers need not import simtime.
type Duration = simtime.Duration

// Simulated-duration units (schedule offsets, session lengths).
const (
	// Second is one simulated second.
	Second = simtime.Second
	// Millisecond is one simulated millisecond.
	Millisecond = simtime.Millisecond
)
