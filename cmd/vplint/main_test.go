package main

import (
	"strings"
	"testing"
)

// TestCleanRepo is the acceptance pin: vplint over the entire module must
// exit 0 — every real finding was fixed or carries a reasoned pragma.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is seconds of type-checking; covered by the CI vplint step")
	}
	var out, errb strings.Builder
	if rc := run([]string{"../../..."}, &out, &errb); rc != 0 {
		t.Fatalf("vplint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", rc, out.String(), errb.String())
	}
}

// TestSeededCorpusExits1 is the other half: the seeded-violation corpus
// (directory suffixes matching the real package sets) must fail with
// findings from every check in file:line: [check] form.
func TestSeededCorpusExits1(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"../../internal/lint/testdata/seeded/..."}, &out, &errb)
	if rc != 1 {
		t.Fatalf("vplint seeded corpus = exit %d, want 1\nstdout:\n%s\nstderr:\n%s", rc, out.String(), errb.String())
	}
	for _, want := range []string{"[walltime]", "[globalrand]", "[maporder]", "[hotjson]", "[floatfmt]"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("seeded corpus output missing %s findings:\n%s", want, out.String())
		}
	}
	if !strings.Contains(out.String(), "clock.go:10: [walltime]") {
		t.Errorf("findings should print as file:line: [check] message:\n%s", out.String())
	}
}

// TestUsageExits2 pins the vpfleet-style exit-code split: bad invocations
// are 2, findings are 1.
func TestUsageExits2(t *testing.T) {
	var out, errb strings.Builder
	if rc := run(nil, &out, &errb); rc != 2 {
		t.Fatalf("no-args = exit %d, want 2", rc)
	}
	if rc := run([]string{"-checks", "nosuch", "."}, &out, &errb); rc != 2 {
		t.Fatalf("unknown check = exit %d, want 2", rc)
	}
}

// TestListChecks keeps -list wired to the registry.
func TestListChecks(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-list"}, &out, &errb); rc != 0 {
		t.Fatalf("-list = exit %d, want 0", rc)
	}
	for _, c := range []string{"walltime", "globalrand", "maporder", "hotjson", "floatfmt"} {
		if !strings.Contains(out.String(), c) {
			t.Errorf("-list output missing %s:\n%s", c, out.String())
		}
	}
}
