// vplint statically checks the simulator's determinism contract: no
// wall-clock reads, no global math/rand, no order-sensitive map iteration,
// no reflection-based encoding or drifting float formats in row/trace
// encoders. It is the `go build`-speed complement to the golden and
// determinism test suites.
//
// Usage:
//
//	vplint [-checks walltime,maporder,...] [-list] packages...
//
// Packages are directories or `dir/...` trees relative to the working
// directory, which must be inside the module (imports resolve through the
// go command). Findings print as `file:line: [check] message`; the exit
// code is 1 if there are findings, 2 on usage or load errors, 0 when the
// tree is clean.
//
// Suppress a finding in place with a reasoned pragma on or directly above
// the offending line:
//
//	//vplint:allow maporder(integer sums are order-independent)
//
// A pragma that no longer matches a finding is itself reported (stale
// pragmas fail the build), as is a pragma without a reason.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"telepresence/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		listFlag   = fs.Bool("list", false, "list registered checks and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vplint [-checks name,...] [-list] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		var err error
		checks, err = lint.ChecksByName(strings.Split(*checksFlag, ","))
		if err != nil {
			fmt.Fprintln(stderr, "vplint:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "vplint:", err)
		return 2
	}
	// Import-resolution failures degrade some checks from type-verified to
	// syntactic; surface them as warnings rather than dying, so vplint
	// stays useful on a tree that is mid-refactor.
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			if strings.Contains(te.Error(), "could not import") {
				fmt.Fprintf(stderr, "vplint: warning: %s: %v\n", p.Path, te)
			}
		}
	}

	findings := lint.Run(pkgs, checks, lint.DefaultConfig())
	for _, f := range findings {
		f.Pos.Filename = relPath(cwd, f.Pos.Filename)
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vplint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
