// Command rttprobe runs the server-infrastructure measurements of §4.1:
// RTT CDFs from the nine US vantage points to every provider server
// (Figure 4) plus the anycast audit, with optional ASCII CDF plots.
//
// Usage:
//
//	rttprobe [-seed N] [-reps N] [-plot]
package main

import (
	"flag"
	"fmt"
	"log"

	tp "telepresence"
)

func main() {
	seed := flag.Int64("seed", 1, "seed")
	reps := flag.Int("reps", 5, "repetitions per vantage point (paper: >=5)")
	plot := flag.Bool("plot", false, "render ASCII CDFs")
	flag.Parse()

	opts := tp.Quick(*seed)
	opts.Reps = *reps

	fmt.Println("RTT between VCA servers and the nine US vantage points")
	fmt.Println("(F=FaceTime Z=Zoom W=Webex T=Teams; server state abbreviations)")
	fmt.Println()
	fmt.Printf("%-8s %-8s %-8s %-8s %-8s %s\n", "series", "min", "median", "p95", "max", "<20ms")
	rows, err := tp.Fig4(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		s := r.Sample
		fmt.Printf("%-8s %-8.1f %-8.1f %-8.1f %-8.1f %.0f%%\n",
			r.Label, s.Min(), s.Median(), s.Percentile(95), s.Max(), s.FractionBelow(20)*100)
		if *plot {
			fmt.Println(s.ASCIICDF(60, 8))
		}
	}

	fmt.Println()
	fmt.Println("Anycast audit (speed-of-light consistency across vantage points):")
	flagged := 0
	verdicts, err := tp.AnycastAudit(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Anycast {
			flagged++
			fmt.Printf("  ANYCAST %v: %s\n", v.Server, v.Evidence)
		}
	}
	if flagged == 0 {
		fmt.Println("  all provider servers consistent with unicast (matches the paper)")
	}
}
