package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// vpfleetBin is the compiled CLI under test, built once in TestMain so the
// exit-code and signal tests exercise the real binary (os.Exit and signal
// delivery don't compose with in-process testing).
var vpfleetBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "vpfleet-test-*")
	if err != nil {
		panic(err)
	}
	vpfleetBin = filepath.Join(dir, "vpfleet")
	out, err := exec.Command("go", "build", "-o", vpfleetBin, ".").CombinedOutput()
	if err != nil {
		panic("building vpfleet: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runVpfleet executes the binary and returns (exit code, stdout+stderr).
func runVpfleet(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(vpfleetBin, args...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	if err == nil {
		return 0, buf.String()
	}
	var exitErr *exec.ExitError
	if !isExit(err, &exitErr) {
		t.Fatalf("vpfleet %v: %v\n%s", args, err, buf.String())
	}
	return exitErr.ExitCode(), buf.String()
}

func isExit(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// TestExitCodes pins the CLI contract: 0 success, 1 cell failures,
// 2 usage errors, 3 interrupted-resumable (covered by TestSigtermResume).
func TestExitCodes(t *testing.T) {
	out := t.TempDir()
	// A profiled sweep seeds real profile files for the prof cases; a
	// garbage file pins that malformed profiles are usage errors.
	profDir := t.TempDir()
	if code, o := runVpfleet(t, "sweep", "burstloss", "-axis", "loss_bad=0.3",
		"-vprof", profDir, "-out", out); code != 0 {
		t.Fatalf("profiled sweep exited %d\n%s", code, o)
	}
	profJSONL := filepath.Join(profDir, "merged.vprof.jsonl")
	profPb := filepath.Join(profDir, "merged.vprof.pb.gz")
	garbage := filepath.Join(t.TempDir(), "garbage.vprof.jsonl")
	if err := os.WriteFile(garbage, []byte("not a profile\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"list"}, 0},
		{"no command", []string{}, 2},
		{"unknown command", []string{"frob"}, 2},
		{"run without names", []string{"run"}, 2},
		{"unknown experiment", []string{"run", "nosuch"}, 2},
		{"unknown sweep target", []string{"sweep", "nosuch", "-axis", "a=1"}, 2},
		{"bad flag", []string{"run", "protocols", "-bogus"}, 2},
		{"bad format", []string{"run", "protocols", "-format", "xml"}, 2},
		{"resume without checkpoint", []string{"run", "protocols", "-resume", "-out", out}, 2},
		{"bad chaos spec", []string{"run", "protocols", "-chaos", "wat=1", "-out", out}, 2},
		{"clean run", []string{"run", "protocols", "-out", out}, 0},
		{"chaos-failed run", []string{"run", "protocols", "-chaos", "error=1,attempts=9", "-retries", "2", "-out", out}, 1},
		{"chaos healed by retry", []string{"run", "protocols", "-chaos", "error=1,attempts=1", "-retries", "2", "-out", out}, 0},
		// serve wraps run/sweep: its own errors are usage errors, and the
		// underlying run's exit code passes through otherwise.
		{"serve without subcommand", []string{"serve", "-addr", "127.0.0.1:0"}, 2},
		{"serve unknown subcommand", []string{"serve", "-addr", "127.0.0.1:0", "frob"}, 2},
		{"serve bad addr", []string{"serve", "-addr", "999.999.999.999:http", "run", "protocols", "-out", out}, 2},
		{"serve bad monitor addr", []string{"run", "protocols", "-monitor-addr", "999.999.999.999:http", "-out", out}, 2},
		{"serve clean run", []string{"serve", "-addr", "127.0.0.1:0", "run", "protocols", "-out", out}, 0},
		{"serve chaos-failed run", []string{"serve", "-addr", "127.0.0.1:0", "run", "protocols", "-chaos", "error=1,attempts=9", "-retries", "2", "-out", out}, 1},
		{"progress clean run", []string{"run", "protocols", "-progress", "-out", out}, 0},
		// prof introspects profile files: malformed or missing inputs are
		// usage errors; valid rank and merge succeed on both formats.
		{"prof without subcommand", []string{"prof"}, 2},
		{"prof unknown subcommand", []string{"prof", "frob"}, 2},
		{"prof top without file", []string{"prof", "top"}, 2},
		{"prof merge without files", []string{"prof", "merge"}, 2},
		{"prof top missing file", []string{"prof", "top", filepath.Join(out, "nosuch.vprof.jsonl")}, 2},
		{"prof top garbage file", []string{"prof", "top", garbage}, 2},
		{"prof top jsonl", []string{"prof", "top", profJSONL}, 0},
		{"prof top pprof", []string{"prof", "top", profPb}, 0},
		{"prof merge valid", []string{"prof", "merge", "-out", t.TempDir(), profJSONL, profPb}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, output := runVpfleet(t, tc.args...)
			if got != tc.want {
				t.Errorf("vpfleet %v exited %d, want %d\n%s", tc.args, got, tc.want, output)
			}
		})
	}
}

// TestChaosHealedBytesMatchClean: a run whose injected faults are healed
// by retries writes byte-identical rows to a fault-free run.
func TestChaosHealedBytesMatchClean(t *testing.T) {
	clean, healed := t.TempDir(), t.TempDir()
	if code, out := runVpfleet(t, "run", "protocols", "-workers", "2", "-out", clean); code != 0 {
		t.Fatalf("clean run exited %d\n%s", code, out)
	}
	if code, out := runVpfleet(t, "run", "protocols", "-workers", "2", "-out", healed,
		"-chaos", "panic=1,attempts=1", "-retries", "3"); code != 0 {
		t.Fatalf("healed run exited %d\n%s", code, out)
	}
	a, err := os.ReadFile(filepath.Join(clean, "protocols.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(healed, "protocols.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("healed rows diverge from clean rows\nclean:  %.200s\nhealed: %.200s", a, b)
	}
	// The manifest records the extra attempts.
	var m struct {
		Experiments []struct {
			Attempts int `json:"attempts"`
		} `json:"experiments"`
	}
	data, err := os.ReadFile(filepath.Join(healed, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Experiments) != 1 || m.Experiments[0].Attempts != 2 {
		t.Errorf("manifest attempts = %+v, want 2 (one faulted + one clean)", m.Experiments)
	}
}

// serveURL polls path (the serve-mode stderr log) for the announced
// introspection URL; with -addr 127.0.0.1:0 the port is kernel-assigned,
// so the log line is the only way to find it.
func serveURL(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	re := regexp.MustCompile(`serving live introspection on (http://\S+)`)
	for time.Now().Before(deadline) {
		data, _ := os.ReadFile(path)
		if m := re.FindSubmatch(data); m != nil {
			return string(m[1])
		}
		time.Sleep(20 * time.Millisecond)
	}
	data, _ := os.ReadFile(path)
	t.Fatalf("serve never announced its URL; log:\n%s", data)
	return ""
}

// getBody fetches url and returns the response body, failing on any
// transport error.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(body)
}

// TestServeSigterm pins the serve-mode interrupt contract: the live API
// is reachable while the fleet runs, /metrics exposes fleet_rows_total,
// the rows endpoint streams sink bytes, and a SIGTERM drain flips
// /api/runs/{id} to "interrupted" before the process exits 3 with an
// interrupted, resumable manifest.
func TestServeSigterm(t *testing.T) {
	if testing.Short() {
		t.Skip("signal timing test")
	}
	out, ck := t.TempDir(), t.TempDir()
	logPath := filepath.Join(t.TempDir(), "serve.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()

	// Chaos delays stretch each cell so the fleet is still mid-run when the
	// API is polled and the signal lands; workers=1 leaves cells queued.
	cmd := exec.Command(vpfleetBin, "serve", "-addr", "127.0.0.1:0",
		"sweep", "handover", "-axis", "delay_ms=0,100,250,500,700,900",
		"-workers", "1", "-out", out, "-checkpoint", ck,
		"-chaos", "delay=1,delay_ms=1200,attempts=99")
	cmd.Stdout, cmd.Stderr = logFile, logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := serveURL(t, logPath)
	id := "sweep-handover"

	// Poll until the run reports itself running with work dispatched.
	deadline := time.Now().Add(10 * time.Second)
	var snap struct {
		State      string `json:"state"`
		Dispatched int    `json:"dispatched"`
	}
	for {
		if err := json.Unmarshal([]byte(getBody(t, base+"/api/runs/"+id)), &snap); err != nil {
			t.Fatalf("bad /api/runs/%s JSON: %v", id, err)
		}
		if snap.State == "running" && snap.Dispatched > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached running state: %+v", snap)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Prometheus exposition carries the run's counters.
	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, `fleet_rows_total{run="`+id+`"}`) {
		t.Errorf("/metrics missing fleet_rows_total for %s:\n%.400s", id, metrics)
	}

	// The rows endpoint streams the sink's NDJSON; wait for the first cell
	// (delay_ms=0 finishes quickly even under chaos delay).
	rowDeadline := time.Now().Add(10 * time.Second)
	for {
		row := getBody(t, base+"/api/runs/"+id+"/rows?max=1")
		if strings.HasPrefix(row, "{") && strings.HasSuffix(strings.TrimSpace(row), "}") {
			break
		}
		if time.Now().After(rowDeadline) {
			t.Fatalf("rows endpoint never streamed a row: %q", row)
		}
		time.Sleep(25 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// During the drain the live API must already report interrupted.
	drainDeadline := time.Now().Add(5 * time.Second)
	for {
		var ds struct {
			State       string `json:"state"`
			Interrupted bool   `json:"interrupted"`
		}
		body := getBody(t, base+"/api/runs/"+id)
		if err := json.Unmarshal([]byte(body), &ds); err != nil {
			t.Fatalf("bad drain JSON: %v", err)
		}
		if ds.State == "interrupted" && ds.Interrupted {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("live state never reported interrupted during drain: %s", body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !isExit(err, &exitErr) || exitErr.ExitCode() != 3 {
		data, _ := os.ReadFile(logPath)
		t.Fatalf("served interrupted run: err=%v, want exit 3\n%s", err, data)
	}
	var m struct {
		Interrupted bool   `json:"interrupted"`
		Checkpoint  string `json:"checkpoint"`
	}
	data, err := os.ReadFile(filepath.Join(out, "sweep-handover-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Interrupted || m.Checkpoint != ck {
		t.Errorf("manifest %+v, want interrupted with checkpoint %s", m, ck)
	}
}

// TestSigtermResume: SIGTERM mid-run drains gracefully (exit 3, journal
// kept), and a resumed invocation completes (exit 0) with output
// byte-identical to a never-interrupted run.
func TestSigtermResume(t *testing.T) {
	if testing.Short() {
		t.Skip("signal timing test")
	}
	clean, part, resumed := t.TempDir(), t.TempDir(), t.TempDir()
	ck := t.TempDir()

	if code, out := runVpfleet(t, "run", "mesh", "-workers", "1", "-out", clean); code != 0 {
		t.Fatalf("clean run exited %d\n%s", code, out)
	}

	// Chaos delays stretch each rep so the signal lands mid-run; workers=1
	// leaves later reps undispatched when the drain begins.
	cmd := exec.Command(vpfleetBin, "run", "mesh", "-workers", "1", "-out", part,
		"-checkpoint", ck, "-chaos", "delay=1,delay_ms=1500,attempts=99")
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var exitErr *exec.ExitError
	if !isExit(err, &exitErr) || exitErr.ExitCode() != 3 {
		t.Fatalf("interrupted run: err=%v, want exit 3\n%s", err, buf.String())
	}

	entries, err := filepath.Glob(filepath.Join(ck, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("nothing journaled before drain (%v): %v", err, entries)
	}

	if code, out := runVpfleet(t, "run", "mesh", "-workers", "2", "-out", resumed,
		"-checkpoint", ck, "-resume"); code != 0 {
		t.Fatalf("resume exited %d\n%s", code, out)
	}
	a, err := os.ReadFile(filepath.Join(clean, "mesh.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(resumed, "mesh.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("resumed rows diverge from clean rows (lens %d vs %d)", len(a), len(b))
	}

	// Manifests: the partial one is marked interrupted+resumable, the
	// resumed one records journal hits.
	var pm struct {
		Interrupted bool   `json:"interrupted"`
		Checkpoint  string `json:"checkpoint"`
	}
	data, _ := os.ReadFile(filepath.Join(part, "manifest.json"))
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatal(err)
	}
	if !pm.Interrupted || pm.Checkpoint != ck {
		t.Errorf("partial manifest %+v, want interrupted with checkpoint %s", pm, ck)
	}
	var rm struct {
		Resumed int `json:"resumed"`
	}
	data, _ = os.ReadFile(filepath.Join(resumed, "manifest.json"))
	if err := json.Unmarshal(data, &rm); err != nil {
		t.Fatal(err)
	}
	if rm.Resumed == 0 {
		t.Error("resumed manifest records no journal hits")
	}
}
