// Command vpfleet drives the experiment fleet: it lists the registered
// experiments and runs any subset (or the whole suite) concurrently,
// sharding each experiment's repetitions across a bounded worker pool and
// writing per-experiment JSONL or CSV plus a run manifest. The sweep
// subcommand runs a cartesian parameter grid over one registered sweep
// target (the scenario experiments' schedule parameters), sharding grid
// cells across the same kind of pool.
//
// Results are deterministic: for a fixed seed, `run all -workers 8`
// produces byte-identical experiment output to `-workers 1`, and the same
// holds for every sweep grid (cell seeds derive from the cell's parameter
// values, never its grid position or worker).
//
// The fleet is fault tolerant (see DESIGN.md "Fault tolerance"): rows
// stream to disk as cells complete, a panicking or failing cell is
// isolated and retried (-retries, -cell-timeout, -backoff) without
// stopping the run, completed cells checkpoint to a journal
// (-checkpoint DIR) that a later invocation resumes (-resume), and a
// deterministic chaos harness (-chaos) injects faults for testing. SIGINT
// or SIGTERM drains gracefully: in-flight cells finish and journal, the
// manifest marks the run resumable, and vpfleet exits 3.
//
// Exit codes: 0 success; 1 one or more cells failed; 2 usage error
// (bad flags, unknown experiment or target); 3 interrupted but resumable.
//
// The trace subcommand introspects session traces: scenario cells write
// per-session event traces (-trace DIR) and metrics timeseries
// (-metrics DIR), and `trace summarize` validates a trace file against the
// event schema and prints a per-link/per-stream timeline report.
//
// A running fleet is live-observable (see DESIGN.md "Live observability"):
// `vpfleet serve -addr :8090 run|sweep ...` executes the fleet while
// serving GET /api/runs, /api/runs/{id}, /api/runs/{id}/rows (NDJSON
// tail-follow of the sink stream), /metrics (Prometheus text) and
// /debug/pprof over HTTP; `-monitor-addr :8090` attaches the same server
// to a plain run/sweep; and `-progress` renders a single-line live
// terminal view (cells done/total, retries, failures, rows/sec, ETA).
// All three views read one Monitor — they can never disagree — and none
// of them changes a single emitted row byte.
//
// The prof subcommand introspects virtual-time profiles (see DESIGN.md
// "Virtual-time profiling"): scenario cells profiled with -vprof DIR write
// per-cell deterministic site reports (.vprof.jsonl) and pprof exports
// (.vprof.pb.gz, openable with `go tool pprof`), the run merges them and
// ranks hot_sites into its manifest, and `prof top`/`prof merge` rank and
// combine profile files after the fact.
//
// Run `vpfleet` with no arguments (or any malformed invocation) for the
// full usage listing — usage() below enumerates every subcommand and the
// shared flag set in one place.
//
// Examples:
//
//	vpfleet run all -workers 8
//	vpfleet run fig5 fig7 -seed 7 -format csv -out results/
//	vpfleet run all -workers 1 -cpuprofile cpu.out -memprofile mem.out
//	vpfleet sweep handover -axis delay_ms=0,100,250,500,1000 -workers 8
//	vpfleet sweep burstloss -axis p_good_bad=0.01,0.05 -checkpoint ck/
//	vpfleet sweep burstloss -axis p_good_bad=0.01,0.05 -checkpoint ck/ -resume
//	vpfleet run all -retries 3 -cell-timeout 5m -chaos panic=0.2,attempts=1
//	vpfleet serve -addr :8090 sweep handover -axis delay_ms=0,100,250
//	vpfleet run all -progress -workers 8
//	vpfleet sweep burstloss -axis loss_bad=0.3,0.6 -vprof prof/
//	vpfleet prof top prof/merged.vprof.pb.gz
//	vpfleet prof merge -out merged/ prof/*.vprof.jsonl
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	tp "telepresence"
	"telepresence/internal/fleetobs"
)

// Exit codes, distinct per failure class so scripts and CI can tell a
// broken run from an interrupted-but-resumable one.
const (
	exitOK          = 0
	exitFailures    = 1 // one or more cells failed after retries
	exitUsage       = 2 // bad flags, unknown command/experiment/target
	exitInterrupted = 3 // gracefully drained; resume with -checkpoint/-resume
)

// writeManifest renders a run or sweep manifest as indented JSON.
func writeManifest(w io.WriteCloser, m any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		runCmd(os.Args[2:], nil)
	case "sweep":
		sweepCmd(os.Args[2:], nil)
	case "serve":
		serveCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	case "prof":
		profCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "vpfleet: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

// usage enumerates every subcommand in one place; subcommand handlers fall
// back here on any malformed invocation, so this listing is the single
// source of CLI truth.
func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vpfleet list                                 list experiments and sweep targets
  vpfleet run all|<name>...                    run experiments on a worker pool
  vpfleet sweep <target> -axis name=v1,v2,...  run a parameter grid over one target
  vpfleet serve [-addr ADDR] run|sweep <args>  run/sweep with live HTTP introspection
  vpfleet trace summarize <file.trace.jsonl>   validate and report session traces
  vpfleet trace schema                         print the trace event schema
  vpfleet prof top [-n N] <profile>...         rank a profile's hottest sites
  vpfleet prof merge [-out DIR] <profile>...   merge profiles into run-level artifacts

run and sweep share the flags:
  [-seed N] [-full] [-workers N] [-out DIR] [-format jsonl|csv]
  [-checkpoint DIR] [-resume] [-retries N] [-cell-timeout D] [-backoff D]
  [-chaos SPEC] [-trace DIR] [-metrics DIR] [-vprof DIR]
  [-monitor-addr ADDR] [-progress]
run additionally takes [-cpuprofile FILE] [-memprofile FILE].

-vprof DIR writes per-cell virtual-time profiles (<cell>.vprof.jsonl
deterministic site counters, <cell>.vprof.pb.gz pprof with wall CPU),
merges them after the run, and ranks hot_sites into the manifest; prof
top/merge accept both formats (.jsonl by extension, pprof otherwise).

serve executes the run/sweep while exposing live introspection over HTTP:
GET /api/runs, /api/runs/{id}, /api/runs/{id}/rows (NDJSON tail),
/metrics (Prometheus text), /debug/pprof. -monitor-addr attaches the same
server to a plain run/sweep; -progress renders a live terminal line.

exit codes: 0 ok; 1 cell failures; 2 usage; 3 interrupted (resumable)`)
	os.Exit(exitUsage)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vpfleet:", err)
	os.Exit(exitFailures)
}

// failUsage reports a bad invocation (unknown name, malformed spec) and
// exits with the usage code, keeping exit 1 for genuine run failures.
func failUsage(err error) {
	fmt.Fprintln(os.Stderr, "vpfleet:", err)
	os.Exit(exitUsage)
}

func list() {
	fmt.Printf("%-10s %-5s %s\n", "name", "reps", "description")
	for _, e := range tp.Experiments() {
		fmt.Printf("%-10s %-5d %s\n", e.Name, e.Reps(tp.Quick(1)), e.Desc)
	}
	fmt.Printf("\nsweep targets (vpfleet sweep <target> -axis name=v1,v2,...):\n")
	fmt.Printf("%-10s %-40s %s\n", "target", "parameters (default)", "description")
	for _, t := range tp.SweepTargets() {
		params := make([]string, len(t.Params))
		for i, p := range t.Params {
			params[i] = fmt.Sprintf("%s (%g)", p.Name, p.Default)
		}
		fmt.Printf("%-10s %-40s %s\n", t.Name, strings.Join(params, ", "), t.Desc)
	}
}

// commonFlags holds the flags and parsing behavior the run and sweep
// subcommands share: scale/seed/pool/output options, the fault-tolerance
// knobs, and the peeling Parse loop that accepts bare names and flags in
// any order.
type commonFlags struct {
	fs          *flag.FlagSet
	seed        *int64
	full        *bool
	workers     *int
	out         *string
	format      *string
	trace       *string
	metrics     *string
	vprof       *string
	checkpoint  *string
	resume      *bool
	retries     *int
	cellTimeout *time.Duration
	backoff     *time.Duration
	chaos       *string
	monitorAddr *string
	progress    *bool

	// serveLis is the pre-bound introspection listener in serve mode
	// (serveCmd binds before delegating, so a bad -addr is a usage error
	// before any work starts); nil for plain run/sweep.
	serveLis net.Listener
}

func newCommonFlags(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:          fs,
		seed:        fs.Int64("seed", 1, "experiment seed"),
		full:        fs.Bool("full", false, "paper-scale runs (120 s sessions, 5 reps); slow"),
		workers:     fs.Int("workers", 0, "worker pool size (0 = all CPUs)"),
		out:         fs.String("out", "fleet-out", "output directory"),
		format:      fs.String("format", "jsonl", "row format: jsonl or csv"),
		trace:       fs.String("trace", "", "write per-cell session event traces (JSONL) to this directory"),
		metrics:     fs.String("metrics", "", "write per-cell metrics timeseries (CSV) to this directory"),
		vprof:       fs.String("vprof", "", "write per-cell virtual-time profiles (JSONL + pprof) to this directory and merge them after the run"),
		checkpoint:  fs.String("checkpoint", "", "journal completed cells to this directory (enables -resume)"),
		resume:      fs.Bool("resume", false, "skip cells already journaled in -checkpoint DIR"),
		retries:     fs.Int("retries", 1, "attempts per cell, first run included (1 = no retry)"),
		cellTimeout: fs.Duration("cell-timeout", 0, "abandon and retry a cell attempt running longer than this (0 = no watchdog)"),
		backoff:     fs.Duration("backoff", 0, "delay before a cell's second attempt, doubling per attempt"),
		chaos:       fs.String("chaos", "", "inject deterministic faults, e.g. panic=0.5,error=0.2,delay=0.3,delay_ms=50,sink=0.1,attempts=2"),
		monitorAddr: fs.String("monitor-addr", "", "serve live HTTP introspection on this address while the fleet runs"),
		progress:    fs.Bool("progress", false, "render a single-line live progress view on stderr"),
	}
}

// parseMixed parses args, peeling non-flag arguments (experiment or target
// names) off between Parse calls so "run all -workers 8" reads naturally.
func (c *commonFlags) parseMixed(args []string) (names []string) {
	rest := args
	for {
		c.fs.Parse(rest)
		rest = c.fs.Args()
		if len(rest) == 0 {
			return names
		}
		names = append(names, rest[0])
		rest = rest[1:]
	}
}

// resolve validates the shared flags and materializes the run inputs: the
// effective worker count (recorded in manifests, so the GOMAXPROCS default
// is resolved here), the scaled options, and the created output directory.
func (c *commonFlags) resolve() (workers int, opts tp.Options, outDir, format string) {
	if *c.format != "jsonl" && *c.format != "csv" {
		failUsage(fmt.Errorf("unknown format %q", *c.format))
	}
	if *c.resume && *c.checkpoint == "" {
		failUsage(errors.New("-resume requires -checkpoint DIR"))
	}
	workers = *c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts = tp.Quick(*c.seed)
	if *c.full {
		opts = tp.Full(*c.seed)
	}
	if err := os.MkdirAll(*c.out, 0o755); err != nil {
		fail(err)
	}
	for _, dir := range []*string{c.trace, c.metrics, c.vprof} {
		if *dir != "" {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				fail(err)
			}
		}
	}
	opts.TraceDir = *c.trace
	opts.MetricsDir = *c.metrics
	opts.ProfDir = *c.vprof
	return workers, opts, *c.out, *c.format
}

// mergeProfiles merges the per-cell profiles a run left in -vprof DIR into
// merged.vprof.jsonl / merged.vprof.pb.gz and returns the hot-site ranking
// for the manifest; nil when no -vprof was given. A merge failure is
// reported but never turns a successful run into a failed one — profiles
// are provenance, not results.
func (c *commonFlags) mergeProfiles() []tp.FleetHotSite {
	if *c.vprof == "" {
		return nil
	}
	hot, err := tp.FleetMergeProfiles(*c.vprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpfleet: vprof merge:", err)
		return nil
	}
	return hot
}

// fleetConfig assembles the scheduler config from the fault-tolerance
// flags: the retry policy, the chaos plan (seeded by the run seed so a
// chaos run is reproducible), the checkpoint journal, and the
// signal-driven interrupt channel. The returned journal is nil when no
// -checkpoint was given.
func (c *commonFlags) fleetConfig(workers int) (tp.FleetConfig, *tp.FleetJournal) {
	cfg := tp.FleetConfig{
		Workers: workers,
		Retry: tp.RetryPolicy{
			MaxAttempts:    *c.retries,
			PerCellTimeout: *c.cellTimeout,
			Backoff:        *c.backoff,
		},
		Interrupt: installInterrupt(),
	}
	if *c.chaos != "" {
		plan, err := tp.ParseFaultPlan(*c.chaos, *c.seed)
		if err != nil {
			failUsage(err)
		}
		cfg.Chaos = plan
	}
	var journal *tp.FleetJournal
	if *c.checkpoint != "" {
		j, err := tp.OpenFleetJournal(*c.checkpoint)
		if err != nil {
			fail(err)
		}
		journal = j
		cfg.Checkpoint = j
		cfg.Resume = *c.resume
	}
	return cfg, journal
}

// installInterrupt wires SIGINT/SIGTERM to a graceful drain: the first
// signal stops dispatch (in-flight cells finish, journal, and stream; the
// manifest marks the run resumable and vpfleet exits 3); a second signal
// force-quits immediately.
func installInterrupt() <-chan struct{} {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vpfleet: interrupt — draining in-flight cells (signal again to force quit)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "vpfleet: forced quit")
		os.Exit(exitInterrupted)
	}()
	return stop
}

// serveCmd executes a run or sweep while serving live introspection:
// `vpfleet serve [-addr ADDR] run|sweep <args...>`. The listener binds
// before any work starts, so a bad address is a usage error (exit 2);
// everything after the subcommand is the run/sweep's own argument list,
// and the exit code is the underlying run's. Graceful SIGTERM drain is
// the normal interrupt path: /api/runs/{id} reports "interrupted" while
// in-flight cells finish, and vpfleet exits 3 with a resume hint.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "HTTP address for live introspection")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		usage()
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		failUsage(fmt.Errorf("serve: cannot listen on %q: %v", *addr, err))
	}
	switch rest[0] {
	case "run":
		runCmd(rest[1:], lis)
	case "sweep":
		sweepCmd(rest[1:], lis)
	default:
		fmt.Fprintf(os.Stderr, "vpfleet: serve: unknown subcommand %q (want run or sweep)\n\n", rest[0])
		usage()
	}
}

// obsSession is one CLI run's observability stack: the RunState monitor
// feeding the HTTP server and/or terminal progress line. A nil
// *obsSession is valid and inert (no flags asked for observability).
type obsSession struct {
	state    *fleetobs.RunState
	progress *fleetobs.Progress
}

// attachObs wires the observability requested by the flags into cfg: the
// serve-mode listener (when serveCmd bound one), a -monitor-addr server,
// and/or the -progress renderer, all reading one Monitor so the views
// cannot disagree. Returns nil when nothing was requested.
func (c *commonFlags) attachObs(id, kind string, cfg *tp.FleetConfig) *obsSession {
	lis := c.serveLis
	if lis == nil && *c.monitorAddr != "" {
		l, err := net.Listen("tcp", *c.monitorAddr)
		if err != nil {
			failUsage(fmt.Errorf("-monitor-addr %q: %v", *c.monitorAddr, err))
		}
		lis = l
	}
	if lis == nil && !*c.progress {
		return nil
	}
	var st *fleetobs.RunState
	if lis != nil {
		reg := fleetobs.NewRegistry()
		st = reg.NewRun(id, kind)
		fleetobs.Serve(lis, reg)
		// The resolved address line is the contract scripts poll for
		// (with -addr 127.0.0.1:0 the port is kernel-assigned).
		fmt.Fprintf(os.Stderr, "vpfleet: serving live introspection on http://%s (run %s)\n", lis.Addr(), id)
	} else {
		st = fleetobs.NewRunState(id, kind)
	}
	cfg.Monitor = st
	s := &obsSession{state: st}
	if *c.progress {
		s.progress = fleetobs.NewProgress(st, os.Stderr)
		s.progress.Start()
	}
	return s
}

// rowTee returns the writer sinks should tee emitted bytes into (the
// run's RowLog), or nil when no observability is attached.
func (s *obsSession) rowTee() io.Writer {
	if s == nil {
		return nil
	}
	return s.state.RowLog()
}

// finish finalizes the live view with the run's outcome and stops the
// progress renderer; tail-following rows clients terminate here.
func (s *obsSession) finish(runErr error, resumeHint string) {
	if s == nil {
		return
	}
	if s.progress != nil {
		s.progress.Stop()
	}
	hint := ""
	if errors.Is(runErr, tp.ErrFleetInterrupted) {
		hint = resumeHint
	}
	s.state.Finish(runErr, hint)
}

// exit maps a run's error to the process exit code: interrupted (and
// therefore resumable) runs exit 3, any other failure exits 1.
func exit(runErr error, journal *tp.FleetJournal, resumeHint string) {
	if runErr == nil {
		os.Exit(exitOK)
	}
	fmt.Fprintln(os.Stderr, "vpfleet:", runErr)
	if errors.Is(runErr, tp.ErrFleetInterrupted) {
		if journal != nil {
			fmt.Fprintf(os.Stderr, "vpfleet: interrupted; resume with: %s\n", resumeHint)
		}
		os.Exit(exitInterrupted)
	}
	os.Exit(exitFailures)
}

// axisFlags collects repeated -axis name=v1,v2,... flags in order.
type axisFlags []tp.SweepAxis

func (a *axisFlags) String() string { return fmt.Sprint(*a) }

func (a *axisFlags) Set(s string) error {
	name, list, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || list == "" {
		return fmt.Errorf("axis %q not of the form name=v1,v2,...", s)
	}
	var values []float64
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("axis %s: bad value %q", name, part)
		}
		values = append(values, v)
	}
	*a = append(*a, tp.SweepAxis{Name: name, Values: values})
	return nil
}

// traceCmd introspects trace files: `summarize` validates every line
// against the event schema and prints a per-link/per-stream timeline
// report; `schema` prints the schema itself.
func traceCmd(args []string) {
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "schema":
		fmt.Print(tp.TraceSchemaDoc())
	case "summarize":
		if len(args) < 2 {
			usage()
		}
		for i, path := range args[1:] {
			if i > 0 {
				fmt.Println()
			}
			summarizeFile(path)
		}
	default:
		fmt.Fprintf(os.Stderr, "vpfleet: unknown trace subcommand %q\n\n", args[0])
		usage()
	}
}

// summarizeFile validates and reports one trace; any schema violation or
// read error is fatal (non-zero exit), making this the CI smoke check.
func summarizeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	sum, err := tp.SummarizeTrace(f)
	if err != nil {
		fail(fmt.Errorf("summarize %s: %w", path, err))
	}
	fmt.Printf("trace %s\n", path)
	if err := sum.WriteReport(os.Stdout); err != nil {
		fail(err)
	}
}

// profCmd introspects virtual-time profiles: `top` ranks one profile's
// hottest scheduling sites, `merge` sums several profiles into run-level
// artifacts. Both accept the deterministic JSONL reports (.vprof.jsonl)
// and the pprof exports (.vprof.pb.gz / any pprof profile the vprof
// encoder wrote); an unreadable or malformed file is a usage error
// (exit 2).
func profCmd(args []string) {
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "top":
		fs := flag.NewFlagSet("prof top", flag.ExitOnError)
		n := fs.Int("n", 10, "how many sites to rank (0 = all)")
		fs.Parse(args[1:])
		if fs.NArg() == 0 {
			usage()
		}
		for i, path := range fs.Args() {
			if i > 0 {
				fmt.Println()
			}
			r := parseProfFile(path)
			fmt.Printf("profile %s\n", path)
			if err := r.WriteTop(os.Stdout, *n); err != nil {
				fail(err)
			}
		}
	case "merge":
		fs := flag.NewFlagSet("prof merge", flag.ExitOnError)
		out := fs.String("out", ".", "directory for the merged artifacts")
		fs.Parse(args[1:])
		if fs.NArg() == 0 {
			usage()
		}
		reports := make([]*tp.VProfReport, 0, fs.NArg())
		for _, path := range fs.Args() {
			reports = append(reports, parseProfFile(path))
		}
		m := tp.MergeVProfReports(reports...)
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		jsonlPath := filepath.Join(*out, tp.FleetMergedProfJSONL)
		pprofPath := filepath.Join(*out, tp.FleetMergedProfPprof)
		writeProfArtifact(jsonlPath, m.WriteJSONL)
		writeProfArtifact(pprofPath, func(w io.Writer) error {
			return m.WritePprof(w, time.Now().UnixNano())
		})
		fmt.Printf("merged %d profiles (%d sites, %d events): %s, %s\n",
			len(reports), len(m.Sites), m.TotalEvents, jsonlPath, pprofPath)
	default:
		fmt.Fprintf(os.Stderr, "vpfleet: unknown prof subcommand %q\n\n", args[0])
		usage()
	}
}

// parseProfFile reads one profile, selecting the decoder by extension:
// .jsonl parses as a deterministic site report, anything else as a pprof
// profile. Malformed files are usage errors.
func parseProfFile(path string) *tp.VProfReport {
	f, err := os.Open(path)
	if err != nil {
		failUsage(err)
	}
	defer f.Close()
	var r *tp.VProfReport
	if strings.HasSuffix(path, ".jsonl") {
		r, err = tp.ParseVProfReport(f)
	} else {
		r, err = tp.ParseVProfPprof(f)
	}
	if err != nil {
		failUsage(fmt.Errorf("prof %s: %w", path, err))
	}
	return r
}

// writeProfArtifact writes one merged profile output.
func writeProfArtifact(path string, emit func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := emit(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func sweepCmd(args []string, lis net.Listener) {
	c := newCommonFlags("sweep")
	c.serveLis = lis
	var axes axisFlags
	c.fs.Var(&axes, "axis", "swept parameter as name=v1,v2,... (repeatable)")
	names := c.parseMixed(args)
	if len(names) != 1 {
		usage()
	}
	spec := tp.SweepSpec{Target: names[0], Axes: axes}
	target, ok := tp.LookupSweepTarget(spec.Target)
	if !ok {
		failUsage(fmt.Errorf("unknown sweep target %q (try: list)", spec.Target))
	}
	if err := spec.Validate(); err != nil {
		failUsage(err)
	}
	workers, opts, out, format := c.resolve()
	cfg, journal := c.fleetConfig(workers)
	obs := c.attachObs("sweep-"+spec.Target, "sweep", &cfg)

	path := filepath.Join(out, "sweep-"+spec.Target+"."+format)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}

	// Rows stream to the file as cells complete (memory is bounded by the
	// reorder window, not the grid); journaled cells replay on -resume.
	start := time.Now()
	results, runErr := tp.FleetRunSweepStream(spec, opts, cfg, newFileSink(f, format, target.Row, obs.rowTee()))
	wall := time.Since(start)

	manifest := tp.NewFleetSweepManifest(spec, opts, workers, wall, results)
	manifest.File = path
	manifest.HotSites = c.mergeProfiles()
	if journal != nil {
		manifest.Checkpoint = journal.Dir()
	}
	// Per-target manifest name, so sweeping two targets into one output
	// directory preserves both runs' provenance.
	mf, err := os.Create(filepath.Join(out, "sweep-"+spec.Target+"-manifest.json"))
	if err != nil {
		fail(err)
	}
	if err := writeManifest(mf, manifest); err != nil {
		fail(err)
	}

	fmt.Printf("%-5s %-40s %-7s %-9s %s\n", "cell", "params", "rows", "wall", "status")
	for _, r := range results {
		status := "ok"
		switch {
		case r.Err != nil && errors.Is(r.Err, tp.ErrFleetInterrupted):
			status = "INTERRUPTED"
		case r.Err != nil:
			status = "ERROR: " + r.Err.Error()
		case r.Resumed:
			status = "ok (resumed)"
		}
		fmt.Printf("%-5d %-40s %-7d %-9s %s\n",
			r.Cell.Index, r.Cell.Label, r.RowCount, r.Wall.Round(time.Millisecond), status)
	}
	fmt.Printf("\nsweep %s: %d cells in %s (workers=%d); rows: %s\n",
		spec.Target, len(results), wall.Round(time.Millisecond), workers, path)
	hint := fmt.Sprintf("vpfleet sweep %s ... -checkpoint %s -resume", spec.Target, *c.checkpoint)
	obs.finish(runErr, hint)
	exit(runErr, journal, hint)
}

func runCmd(args []string, lis net.Listener) {
	c := newCommonFlags("run")
	c.serveLis = lis
	cpuProfile := c.fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := c.fs.String("memprofile", "", "write a heap profile after the run to this file")
	names := c.parseMixed(args)
	if len(names) == 0 {
		usage()
	}
	exps, err := tp.SelectExperiments(names...)
	if err != nil {
		failUsage(err)
	}
	workers, opts, out, format := c.resolve()
	cfg, journal := c.fleetConfig(workers)
	obs := c.attachObs("run", "run", &cfg)

	// Profiling hooks for the hot-path work the ROADMAP tracks. Runner
	// execution carries pprof labels, so samples still attribute to
	// (experiment, rep) even though sink I/O now overlaps the run.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}

	// One output file per experiment, named by the registry; rows stream
	// as reps complete (memory is bounded by the reorder window).
	files := map[string]string{}
	start := time.Now()
	results, runErr := tp.FleetRunStream(exps, opts, cfg, func(e tp.Experiment) (tp.Sink, error) {
		path := filepath.Join(out, e.Name+"."+format)
		files[e.Name] = path
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return newFileSink(f, format, e.Row, obs.rowTee()), nil
	})
	wall := time.Since(start)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fail(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	manifest := tp.NewFleetManifest(opts, workers, wall, results)
	manifest.HotSites = c.mergeProfiles()
	for i := range manifest.Experiments {
		manifest.Experiments[i].File = files[manifest.Experiments[i].Name]
	}
	if journal != nil {
		manifest.Checkpoint = journal.Dir()
	}
	mf, err := os.Create(filepath.Join(out, "manifest.json"))
	if err != nil {
		fail(err)
	}
	if err := writeManifest(mf, manifest); err != nil {
		fail(err)
	}

	fmt.Printf("%-10s %-5s %-7s %-9s %s\n", "name", "reps", "rows", "wall", "file")
	for _, r := range results {
		status := files[r.Experiment.Name]
		switch {
		case r.Err != nil && errors.Is(r.Err, tp.ErrFleetInterrupted):
			status = "INTERRUPTED"
		case r.Err != nil:
			status = "ERROR: " + r.Err.Error()
		case r.Resumed > 0:
			status += fmt.Sprintf(" (%d/%d reps resumed)", r.Resumed, r.Reps)
		}
		fmt.Printf("%-10s %-5d %-7d %-9s %s\n",
			r.Experiment.Name, r.Reps, r.RowCount, r.Wall.Round(time.Millisecond), status)
	}
	fmt.Printf("\n%d experiments in %s (workers=%d); manifest: %s\n",
		len(results), wall.Round(time.Millisecond), workers, filepath.Join(out, "manifest.json"))
	hint := fmt.Sprintf("vpfleet run %s -checkpoint %s -resume", strings.Join(names, " "), *c.checkpoint)
	obs.finish(runErr, hint)
	exit(runErr, journal, hint)
}

// newFileSink wraps f in the row sink for format ("csv" or "jsonl",
// validated by resolve), closing the file with the sink. A non-nil tee
// additionally receives every emitted byte (the live rows endpoint);
// the tee is an in-memory ring and never fails, so it cannot affect the
// run's outcome.
func newFileSink(f *os.File, format string, row tp.ExperimentRow, tee io.Writer) tp.Sink {
	var w io.Writer = f
	if tee != nil {
		w = io.MultiWriter(f, tee)
	}
	if format == "csv" {
		return closeSink{tp.NewCSVSink(w, row), f}
	}
	return closeSink{tp.NewJSONLSink(w), f}
}

// closeSink closes the backing file after the row sink finishes.
type closeSink struct {
	tp.Sink
	f *os.File
}

func (c closeSink) Close() error {
	if err := c.Sink.Close(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// WriteEntry forwards journal-entry replay to the wrapped sink, keeping
// resumability through the file-closing wrapper.
func (c closeSink) WriteEntry(e *tp.FleetJournalEntry) error {
	es, ok := c.Sink.(tp.EntrySink)
	if !ok {
		return fmt.Errorf("vpfleet: sink %T cannot replay journal entries", c.Sink)
	}
	return es.WriteEntry(e)
}
