// Command vpfleet drives the experiment fleet: it lists the registered
// experiments and runs any subset (or the whole suite) concurrently,
// sharding each experiment's repetitions across a bounded worker pool and
// writing per-experiment JSONL or CSV plus a run manifest.
//
// Results are deterministic: for a fixed seed, `run all -workers 8`
// produces byte-identical experiment output to `-workers 1`.
//
// Usage:
//
//	vpfleet list
//	vpfleet run [-seed N] [-full] [-workers N] [-out DIR] [-format jsonl|csv]
//	            [-cpuprofile FILE] [-memprofile FILE] all|<name>...
//
// Examples:
//
//	vpfleet run all -workers 8
//	vpfleet run fig5 fig7 -seed 7 -format csv -out results/
//	vpfleet run all -workers 1 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	tp "telepresence"
)

// writeManifest renders the run manifest as indented JSON.
func writeManifest(w io.WriteCloser, m tp.FleetManifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		runCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "vpfleet: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vpfleet list
  vpfleet run [-seed N] [-full] [-workers N] [-out DIR] [-format jsonl|csv] all|<name>...`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vpfleet:", err)
	os.Exit(1)
}

func list() {
	fmt.Printf("%-10s %-5s %s\n", "name", "reps", "description")
	for _, e := range tp.Experiments() {
		fmt.Printf("%-10s %-5d %s\n", e.Name, e.Reps(tp.Quick(1)), e.Desc)
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	full := fs.Bool("full", false, "paper-scale runs (120 s sessions, 5 reps); slow")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs)")
	out := fs.String("out", "fleet-out", "output directory")
	format := fs.String("format", "jsonl", "row format: jsonl or csv")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile after the run to this file")
	// Accept experiment names and flags in any order ("run all -workers 8"
	// reads naturally): peel non-flag arguments off between Parse calls.
	var names []string
	rest := args
	for {
		fs.Parse(rest)
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		names = append(names, rest[0])
		rest = rest[1:]
	}
	if len(names) == 0 {
		usage()
	}
	if *format != "jsonl" && *format != "csv" {
		fail(fmt.Errorf("unknown format %q", *format))
	}

	exps, err := tp.SelectExperiments(names...)
	if err != nil {
		fail(err)
	}
	if *workers <= 0 {
		// Resolve the default here so the manifest records the effective
		// pool size, not the flag's zero value.
		*workers = runtime.GOMAXPROCS(0)
	}
	opts := tp.Quick(*seed)
	if *full {
		opts = tp.Full(*seed)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	// Profiling hooks for the hot-path work the ROADMAP tracks: profile
	// exactly the experiment execution, not sink I/O.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}

	start := time.Now()
	results, runErr := tp.FleetRun(exps, opts, tp.FleetConfig{Workers: *workers})
	wall := time.Since(start)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fail(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	// One output file per experiment, named by the registry.
	files := map[string]string{}
	err = tp.FleetWrite(results, func(e tp.Experiment) (tp.Sink, error) {
		path := filepath.Join(*out, e.Name+"."+*format)
		files[e.Name] = path
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if *format == "csv" {
			return closeSink{tp.NewCSVSink(f, e.Row), f}, nil
		}
		return closeSink{tp.NewJSONLSink(f), f}, nil
	})
	if err != nil {
		fail(err)
	}

	manifest := tp.NewFleetManifest(opts, *workers, wall, results)
	for i := range manifest.Experiments {
		manifest.Experiments[i].File = files[manifest.Experiments[i].Name]
	}
	mf, err := os.Create(filepath.Join(*out, "manifest.json"))
	if err != nil {
		fail(err)
	}
	if err := writeManifest(mf, manifest); err != nil {
		fail(err)
	}

	fmt.Printf("%-10s %-5s %-7s %-9s %s\n", "name", "reps", "rows", "wall", "file")
	for _, r := range results {
		status := files[r.Experiment.Name]
		if r.Err != nil {
			status = "ERROR: " + r.Err.Error()
		}
		fmt.Printf("%-10s %-5d %-7d %-9s %s\n",
			r.Experiment.Name, r.Reps, len(r.Rows), r.Wall.Round(time.Millisecond), status)
	}
	fmt.Printf("\n%d experiments in %s (workers=%d); manifest: %s\n",
		len(results), wall.Round(time.Millisecond), *workers, filepath.Join(*out, "manifest.json"))
	if runErr != nil {
		fail(runErr)
	}
}

// closeSink closes the backing file after the row sink finishes.
type closeSink struct {
	tp.Sink
	f *os.File
}

func (c closeSink) Close() error {
	if err := c.Sink.Close(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
