// Command vpbench regenerates every table and figure of the paper's
// evaluation and prints measured values next to the paper's, forming the
// data behind EXPERIMENTS.md.
//
// Usage:
//
//	vpbench [-seed N] [-full] [-only fig4,fig5,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	tp "telepresence"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	full := flag.Bool("full", false, "paper-scale runs (120 s sessions, 5 reps); slow")
	only := flag.String("only", "", "comma-separated subset: fig4,protocols,fig5,mesh,keypoints,latency,rate,fig6,fig7,remote,anycast,servers,viewport,qoe")
	flag.Parse()

	opts := tp.Quick(*seed)
	if *full {
		opts = tp.Full(*seed)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(k string) bool { return len(want) == 0 || want[k] }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		os.Exit(1)
	}

	if run("fig4") {
		fmt.Println("== Figure 4: RTT between VCA servers and test users ==")
		fmt.Println("series   min     p25     median  p95     max     <20ms")
		rows, err := tp.Fig4(opts)
		if err != nil {
			fail(err)
		}
		for _, r := range rows {
			s := r.Sample
			fmt.Printf("%-8s %-7.1f %-7.1f %-7.1f %-7.1f %-7.1f %.0f%%\n",
				r.Label, s.Min(), s.Percentile(25), s.Median(), s.Percentile(95), s.Max(),
				s.FractionBelow(20)*100)
		}
		fmt.Println("paper: worst case >100 ms (CA-W); TX/IL keep all <70 ms;")
		fmt.Println("       TX-F 20% below 20 ms vs VA-F 38%")
		fmt.Println()
	}

	if run("protocols") {
		fmt.Println("== §4.1: protocol & topology matrix ==")
		fmt.Printf("%-22s %-16s %-9s %s\n", "session", "media", "transport", "topology")
		for _, c := range tp.ProtocolMatrix() {
			topo := "server"
			if c.P2P {
				topo = "P2P"
			}
			fmt.Printf("%-22s %-16s %-9s %s\n", c.Desc, c.Media, c.Transport, topo)
		}
		fmt.Println("paper: QUIC only for all-Vision-Pro FaceTime (never P2P); RTP otherwise;")
		fmt.Println("       P2P for two-party Zoom/FaceTime")
		fmt.Println()
	}

	if run("fig5") {
		fmt.Println("== Figure 5: two-user throughput (Mbps) ==")
		rows, err := tp.Fig5(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("app  p5     p25    median p75    p95    mean   paper-mean")
		paper := map[string]string{"F": "0.67", "F*": "~2", "Z": "~1.5", "W": ">4", "T": "~2.7"}
		for _, r := range rows {
			b := r.Box
			fmt.Printf("%-4s %-6.2f %-6.2f %-6.2f %-6.2f %-6.2f %-6.2f %s\n",
				r.Label, b.P5, b.P25, b.Median, b.P75, b.P95, b.Mean, paper[r.Label])
		}
		fmt.Println()
	}

	if run("mesh") {
		fmt.Println("== §4.3: direct 3D streaming estimate ==")
		ms, err := tp.MeshStreaming(opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("10 heads, %v triangles\n", ms.Triangles)
		fmt.Printf("measured: %s Mbps at 90 FPS   paper: 108.4±16.7 Mbps\n\n", ms.MbpsSample.MeanStd(1))
	}

	if run("keypoints") {
		fmt.Println("== §4.3: semantic (keypoint) streaming estimate ==")
		kp, err := tp.KeypointStreaming(opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d keypoints (paper: 74), 2000 frames, 90 FPS\n", kp.Keypoints)
		fmt.Printf("measured: %s Mbps   paper: 0.64±0.02 Mbps (FaceTime measured 0.67)\n\n",
			kp.MbpsSample.MeanStd(2))
	}

	if run("latency") {
		fmt.Println("== §4.3: display-latency vs injected delay ==")
		fmt.Println("delay(ms)  semantic-gap(ms)  prerendered-gap(ms)")
		dlRows, err := tp.DisplayLatency(opts, tp.DefaultInjectedDelaysMs())
		if err != nil {
			fail(err)
		}
		for _, r := range dlRows {
			fmt.Printf("%-10.0f %-17.1f %.1f\n", r.InjectedDelayMs, r.SemanticDiffMs, r.PrerenderedDiffMs)
		}
		fmt.Println("paper: gap stays <16 ms regardless of delay => content is not pre-rendered video")
		fmt.Println()
	}

	if run("rate") {
		fmt.Println("== §4.3: rate adaptation under uplink caps ==")
		rows, err := tp.RateAdaptation(opts, tp.DefaultRateCaps())
		if err != nil {
			fail(err)
		}
		fmt.Println("cap(Mbps)  persona-unavailable  mean-frame-age(ms)")
		for _, r := range rows {
			cap := "none"
			if r.CapMbps > 0 {
				cap = fmt.Sprintf("%.1f", r.CapMbps)
			}
			fmt.Printf("%-10s %-20.0f%% %.1f\n", cap, r.UnavailableFrac*100, r.MeanLatencyMs)
		}
		fmt.Println("paper: at 0.7 Mbps the spatial persona shows 'poor connection' (no rate adaptation)")
		fmt.Println()
	}

	if run("fig6") {
		fmt.Println("== Figure 6: visibility-aware optimizations ==")
		rows, err := tp.Fig6(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("mode  triangles  GPU(ms)  CPU(ms)  uplink(Mbps)   paper-GPU")
		paper := map[string]string{"BL": "6.55", "V": "2.68", "F": "3.97", "D": "3.91"}
		for _, r := range rows {
			fmt.Printf("%-5s %-10d %-8.2f %-8.2f %-14.2f %s\n",
				r.Mode, r.Triangles, r.GPUMs, r.CPUMs, r.UplinkMbps, paper[r.Mode])
		}
		fmt.Println("paper triangles: BL 78,030; V 36; F 21,036; D 45,036; bandwidth & CPU unchanged")
		fmt.Println()
	}

	if run("fig7") {
		fmt.Println("== Figure 7: scalability, 2-5 Vision Pro users ==")
		rows, err := tp.Fig7(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("users  tri-p5   tri-mean  CPU(ms)  GPU(ms)  GPU-p95  down(Mbps)  miss%")
		for _, r := range rows {
			fmt.Printf("%-6d %-8.0f %-9.0f %-8.2f %-8.2f %-8.2f %-11.2f %.1f\n",
				r.Users, r.TriP5, r.TriMean, r.CPUMean, r.GPUMean, r.GPUP95,
				r.DownMbps, r.DeadlineMissFrac*100)
		}
		fmt.Println("paper: CPU 5.67->6.76 ms; GPU 5.65->7.62 ms with p95 >9 ms at five users;")
		fmt.Println("       downlink ~linear; tri 5th percentile flat from 3 to 5 users")
		fmt.Println()
	}

	if run("remote") {
		fmt.Println("== Implications 4: remote-rendering ablation ==")
		rows, err := tp.RemoteRenderAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("users  fanout-down(Mbps)  remote-render-down(Mbps)")
		for _, r := range rows {
			fmt.Printf("%-6d %-18.2f %.2f\n", r.Users, r.FanoutMbps, r.RemoteRenderMbps)
		}
		fmt.Println("remote rendering keeps the downlink independent of user count")
		fmt.Println()
	}

	if run("servers") {
		fmt.Println("== Implications 1: server-allocation policies (one-way latency, all client pairs) ==")
		fmt.Println("policy             max(ms)  mean(ms)  pairs<100ms")
		msRows, err := tp.MultiServerAblation(opts)
		if err != nil {
			fail(err)
		}
		for _, r := range msRows {
			fmt.Printf("%-18v %-8.1f %-9.1f %.0f%%\n", r.Policy, r.MaxOneWayMs, r.MeanOneWayMs, r.FracUnder100*100)
		}
		fmt.Println("geo-distributed servers with a private backbone beat both measured policies")
		fmt.Println()
	}

	if run("viewport") {
		fmt.Println("== Implications 3: viewport-aware delivery ==")
		r, err := tp.ViewportDeliveryAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("persona out of view %.0f%% of the time; uplink %.2f -> %.2f Mbps (%.0f%% saved)\n",
			r.OutOfViewFrac*100, r.BaselineMbps, r.GatedMbps, r.SavingsFrac*100)
		fmt.Println("paper: FaceTime does not exploit visibility for delivery; this is the headroom")
		fmt.Println()
	}

	if run("qoe") {
		fmt.Println("== §5: passive QoE inference from encrypted traffic ==")
		rows, err := tp.PassiveQoESweep(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("app       true-FPS  inferred-FPS  inferred-frame-bytes")
		for _, r := range rows {
			fmt.Printf("%-9v %-9.0f %-13.1f %.0f\n", r.App, r.TrueFPS, r.InferredFPS, r.MeanFrameBytes)
		}
		fmt.Println("frame rate and size recovered from packet timing alone (no decryption)")
		fmt.Println()
	}

	if run("anycast") {
		fmt.Println("== §4.1: anycast audit ==")
		anycast := 0
		verdicts, err := tp.AnycastAudit(opts)
		if err != nil {
			fail(err)
		}
		for _, v := range verdicts {
			if v.Anycast {
				anycast++
				fmt.Printf("ANYCAST %v: %s\n", v.Server, v.Evidence)
			}
		}
		fmt.Printf("%d servers flagged (paper: none use anycast)\n", anycast)
	}
}
