// Command vpsim runs one configurable telepresence session and reports
// per-user measurements: the interactive counterpart to the fixed
// experiments in vpbench.
//
// Usage:
//
//	vpsim -app facetime -users 3 -duration 10 [-cap 0.7] [-delay 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	tp "telepresence"
)

func main() {
	appName := flag.String("app", "facetime", "facetime | zoom | webex | teams")
	users := flag.Int("users", 2, "participants (2-5)")
	durationS := flag.Float64("duration", 10, "simulated seconds")
	capMbps := flag.Float64("cap", 0, "uplink cap on user 1 in Mbps (0 = none); the tc experiment")
	delayMs := flag.Float64("delay", 0, "extra one-way delay on user 1's links in ms")
	device := flag.String("peer-device", "visionpro", "device of the second user: visionpro | macbook | ipad | iphone")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	var app tp.App
	switch strings.ToLower(*appName) {
	case "facetime":
		app = tp.FaceTime
	case "zoom":
		app = tp.Zoom
	case "webex":
		app = tp.Webex
	case "teams":
		app = tp.Teams
	default:
		fmt.Fprintf(os.Stderr, "vpsim: unknown app %q\n", *appName)
		os.Exit(2)
	}
	var peer tp.Device
	switch strings.ToLower(*device) {
	case "visionpro":
		peer = tp.VisionPro
	case "macbook":
		peer = tp.MacBook
	case "ipad":
		peer = tp.IPad
	case "iphone":
		peer = tp.IPhone
	default:
		fmt.Fprintf(os.Stderr, "vpsim: unknown device %q\n", *device)
		os.Exit(2)
	}

	locs := []tp.Location{tp.Ashburn, tp.NewYork, tp.Chicago, tp.Austin, tp.Miami}
	if *users < 2 || *users > len(locs) {
		fmt.Fprintf(os.Stderr, "vpsim: users must be 2-%d\n", len(locs))
		os.Exit(2)
	}
	parts := make([]tp.Participant, *users)
	for i := range parts {
		dev := tp.VisionPro
		if i == 1 {
			dev = peer
		}
		parts[i] = tp.Participant{ID: fmt.Sprintf("u%d", i+1), Loc: locs[i], Device: dev}
	}

	cfg := tp.DefaultSessionConfig(app, parts)
	cfg.Duration = tp.Duration(*durationS * float64(tp.Second))
	cfg.Seed = *seed
	sess, err := tp.NewSession(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpsim:", err)
		os.Exit(1)
	}
	if *capMbps > 0 {
		sess.UplinkShaper(0).RateBps = *capMbps * 1e6
	}
	if *delayMs > 0 {
		sess.UplinkShaper(0).ExtraDelayMs = *delayMs
		sess.DownlinkShaper(0).ExtraDelayMs = *delayMs
	}

	plan := sess.Plan()
	fmt.Printf("app=%v media=%v transport=%v ", plan.App, plan.Media, plan.Transport)
	if plan.P2P {
		fmt.Println("topology=P2P")
	} else {
		fmt.Printf("topology=server(%v)\n", plan.Server)
	}

	res := sess.Run()
	fmt.Printf("%-4s %-10s %-10s %-9s %-7s %-7s %-8s %-7s %s\n",
		"user", "up(Mbps)", "down(Mbps)", "protocol", "sent", "decoded", "undec", "lat(ms)", "unavailable")
	for _, u := range res.Users {
		fmt.Printf("%-4s %-10.2f %-10.2f %-9v %-7d %-7d %-8d %-7.1f %.0f%%\n",
			u.ID, u.Uplink.Mean(), u.Downlink.Mean(), u.Protocol,
			u.FramesSent, u.FramesDecoded, u.FramesUndecodable,
			u.MeanFrameLatencyMs, u.UnavailableFrac*100)
	}
}
